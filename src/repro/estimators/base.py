"""Common estimator interface.

Data-driven estimators implement ``fit(table)``; query-driven ones also
consume a labelled training :class:`~repro.query.workload.Workload`
through the optional ``workload`` argument. Everything returns
*selectivities* (fractions); callers multiply by row counts for
cardinalities.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.metrics import clamp_selectivity
from repro.query.query import Query
from repro.query.workload import Workload
from repro.utils.rng import ensure_rng, query_seed
from repro.utils.timer import Timer

__all__ = ["Estimator", "clamp_selectivity"]


class Estimator:
    """Base class; subclasses set ``name`` and implement fit/estimate."""

    name: str = "base"

    def __init__(self) -> None:
        self._table: Table | None = None

    # ------------------------------------------------------------------
    def fit(self, table: Table, workload: Workload | None = None) -> "Estimator":
        """Train on a relation (and optionally a labelled workload)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def estimate(self, query: Query) -> float:
        """Estimated selectivity of a conjunctive query, in [1/|T|, 1]."""
        raise NotImplementedError  # pragma: no cover - abstract

    # ------------------------------------------------------------------
    def estimate_many(self, queries: list[Query]) -> np.ndarray:
        """Default: sequential estimation (overridden by batch-capable
        estimators)."""
        return np.array([self.estimate(q) for q in queries])

    def estimate_batch(self, queries: list[Query], rngs=None) -> np.ndarray:
        """Uniform batched entry point for the serving layer.

        ``rngs`` optionally carries one ``numpy.random.Generator`` per
        query for stochastic estimators whose results must not depend on
        batch composition (see ``repro.serve``). When the caller supplies
        none, the default derives the *same* per-query streams the
        serving layer would — ``query_seed(self.name, query.cache_key())``
        — so a batch answer never depends on whether generators were
        passed explicitly.  Stochastic subclasses route per-query draws
        through :meth:`_estimate_seeded`; pure-function estimators
        inherit the default, which ignores the generator.

        The default body is a sequential loop — the documented fallback
        for estimators without a shared forward pass.  Batch-capable
        estimators (IAM, Naru) override this with the grouped driver;
        the ``batch-loop-fallback`` lint rule flags any new per-query
        loop that silently bypasses it.
        """
        if rngs is None:
            rngs = [
                ensure_rng(query_seed(self.name, query.cache_key()))
                for query in queries
            ]
        results = np.empty(len(queries), dtype=np.float64)
        for i, (query, rng) in enumerate(zip(queries, rngs)):  # repro: noqa[batch-loop-fallback]
            results[i] = self._estimate_seeded(query, rng)
        return results

    def _estimate_seeded(self, query: Query, rng) -> float:
        """One query under a caller-chosen generator.

        Default ignores ``rng``: most registry estimators are pure
        functions of the query once fitted.  Stochastic estimators that
        rely on the default :meth:`estimate_batch` override this to
        consume the per-query stream instead of internal state.
        """
        del rng  # deterministic once fitted; draws nothing per query
        return float(self.estimate(query))

    def timed_estimates(self, queries: list[Query]) -> tuple[np.ndarray, float]:
        """(estimates, mean ms per query) for the inference-time figure."""
        with Timer() as timer:
            estimates = self.estimate_many(queries)
        return estimates, timer.elapsed_ms / max(len(queries), 1)

    def size_bytes(self) -> int:
        """Serialized model size (for the paper's model-size tables)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def batch_group_sizes(self) -> list[int] | None:
        """Signature-group sizes of the last :meth:`estimate_batch` call.

        Estimators whose batch path runs the grouped sampler driver
        (one stacked forward pass per constrained-column signature)
        report one entry per group, holding the number of queries it
        coalesced; the serving layer turns these into batch-group
        telemetry.  Estimators without a grouped driver return ``None``.
        """
        return None

    def runtime_plan(self):
        """The compiled inference plan backing this estimator, if any.

        AR-based estimators return the shared read-only
        :class:`~repro.runtime.plan.MADEPlan` their sampler executes
        (``None`` before fit); non-neural estimators return ``None``.
        The serving layer surfaces this in ``describe()`` so operators
        can see which models run compiled.
        """
        return None

    # ------------------------------------------------------------------
    @property
    def table(self) -> Table:
        from repro.errors import NotFittedError

        if self._table is None:
            raise NotFittedError(f"{type(self).__name__} used before fit()")
        return self._table
