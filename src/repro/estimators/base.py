"""Common estimator interface.

Data-driven estimators implement ``fit(table)``; query-driven ones also
consume a labelled training :class:`~repro.query.workload.Workload`
through the optional ``workload`` argument. Everything returns
*selectivities* (fractions); callers multiply by row counts for
cardinalities.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.metrics import clamp_selectivity
from repro.query.query import Query
from repro.query.workload import Workload
from repro.utils.timer import Timer

__all__ = ["Estimator", "clamp_selectivity"]


class Estimator:
    """Base class; subclasses set ``name`` and implement fit/estimate."""

    name: str = "base"

    def __init__(self) -> None:
        self._table: Table | None = None

    # ------------------------------------------------------------------
    def fit(self, table: Table, workload: Workload | None = None) -> "Estimator":
        """Train on a relation (and optionally a labelled workload)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def estimate(self, query: Query) -> float:
        """Estimated selectivity of a conjunctive query, in [1/|T|, 1]."""
        raise NotImplementedError  # pragma: no cover - abstract

    # ------------------------------------------------------------------
    def estimate_many(self, queries: list[Query]) -> np.ndarray:
        """Default: sequential estimation (overridden by batch-capable
        estimators)."""
        return np.array([self.estimate(q) for q in queries])

    def estimate_batch(self, queries: list[Query], rngs=None) -> np.ndarray:
        """Uniform batched entry point for the serving layer.

        ``rngs`` optionally carries one ``numpy.random.Generator`` per
        query for stochastic estimators whose results must not depend on
        batch composition (see ``repro.serve``); estimators that are pure
        functions of the query ignore it. The default is a sequential
        loop, so every registry estimator can sit behind the micro-batcher.
        """
        del rngs  # deterministic once fitted; draws nothing per query
        return np.array([self.estimate(q) for q in queries], dtype=np.float64)

    def timed_estimates(self, queries: list[Query]) -> tuple[np.ndarray, float]:
        """(estimates, mean ms per query) for the inference-time figure."""
        with Timer() as timer:
            estimates = self.estimate_many(queries)
        return estimates, timer.elapsed_ms / max(len(queries), 1)

    def size_bytes(self) -> int:
        """Serialized model size (for the paper's model-size tables)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def runtime_plan(self):
        """The compiled inference plan backing this estimator, if any.

        AR-based estimators return the shared read-only
        :class:`~repro.runtime.plan.MADEPlan` their sampler executes
        (``None`` before fit); non-neural estimators return ``None``.
        The serving layer surfaces this in ``describe()`` so operators
        can see which models run compiled.
        """
        return None

    # ------------------------------------------------------------------
    @property
    def table(self) -> Table:
        from repro.errors import NotFittedError

        if self._table is None:
            raise NotFittedError(f"{type(self).__name__} used before fit()")
        return self._table
