"""QuickSel: a uniform mixture model learned from training queries.

Park et al.'s QuickSel fits a mixture of uniform distributions whose
supports come from the training queries' boxes, with weights chosen so
the mixture reproduces the observed training selectivities (a quadratic
program; we solve the equivalent non-negative least squares with an
added sum-to-one row via ``scipy.optimize.nnls``).

Estimation of a new box: ``sum_b w_b * vol(box ∩ support_b)/vol(support_b)``
— the uniformity-within-bucket assumption responsible for its large
errors on skewed, high-dimensional data (paper observation (6)).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import nnls

from repro.data.table import Table
from repro.errors import NotFittedError
from repro.estimators.base import Estimator, clamp_selectivity
from repro.query.query import Query
from repro.query.workload import Workload
from repro.utils.rng import ensure_rng


class QuickSel(Estimator):
    """Query-driven uniform-mixture selectivity learner."""

    name = "quicksel"

    def __init__(self, max_buckets: int = 400, sum_to_one_weight: float = 10.0, seed=None):
        super().__init__()
        self.max_buckets = max_buckets
        self.sum_to_one_weight = sum_to_one_weight
        self._rng = ensure_rng(seed)
        self._boxes: np.ndarray | None = None  # (B, d, 2)
        self._weights: np.ndarray | None = None
        self._column_index: dict[str, int] = {}
        self._domain: np.ndarray | None = None  # (d, 2)

    # ------------------------------------------------------------------
    def _query_box(self, query: Query) -> np.ndarray:
        """Axis-aligned box of a conjunctive query (hull of the intervals)."""
        box = self._domain.copy()
        for name, constraint in query.constraints(self.table).items():
            i = self._column_index[name]
            lo, hi = constraint.bounds()
            box[i, 0] = max(box[i, 0], lo)
            box[i, 1] = min(box[i, 1], hi)
        return box

    @staticmethod
    def _overlap_fraction(boxes: np.ndarray, query_box: np.ndarray) -> np.ndarray:
        """(B,) fraction of each bucket's volume inside ``query_box``."""
        lo = np.maximum(boxes[:, :, 0], query_box[None, :, 0])
        hi = np.minimum(boxes[:, :, 1], query_box[None, :, 1])
        overlap = np.clip(hi - lo, 0.0, None)
        width = boxes[:, :, 1] - boxes[:, :, 0]
        frac = np.where(width > 0, overlap / np.where(width > 0, width, 1.0), (overlap > 0) * 1.0)
        # Degenerate (point) dimensions: inside iff the point is covered.
        point = width <= 0
        if point.any():
            inside = (boxes[:, :, 0] >= query_box[None, :, 0]) & (
                boxes[:, :, 0] <= query_box[None, :, 1]
            )
            frac = np.where(point, inside.astype(float), frac)
        return frac.prod(axis=1)

    # ------------------------------------------------------------------
    def fit(self, table: Table, workload: Workload | None = None) -> "QuickSel":
        if workload is None or len(workload) == 0:
            raise NotFittedError("QuickSel is query-driven: fit() needs a workload")
        self._table = table
        self._column_index = {c.name: i for i, c in enumerate(table.columns)}
        self._domain = np.array([[c.min, c.max] for c in table.columns], dtype=np.float64)

        queries = workload.queries
        sels = workload.true_selectivities
        if len(queries) > self.max_buckets:
            pick = self._rng.choice(len(queries), size=self.max_buckets, replace=False)
            queries = [queries[i] for i in pick]
            sels = sels[pick]

        boxes = [self._domain.copy()]  # the full-domain bucket anchors mass
        boxes.extend(self._query_box(q) for q in queries)
        self._boxes = np.stack(boxes)

        # Least-squares system: training query rows + a sum-to-one row.
        rows = [self._overlap_fraction(self._boxes, self._query_box(q)) for q in queries]
        a = np.vstack(rows + [np.full(len(self._boxes), self.sum_to_one_weight)])
        b = np.concatenate([sels, [self.sum_to_one_weight]])
        weights, _ = nnls(a, b)
        total = weights.sum()
        self._weights = weights / total if total > 0 else np.full(len(weights), 1.0 / len(weights))
        return self

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        if self._weights is None:
            raise NotFittedError("QuickSel used before fit()")
        frac = self._overlap_fraction(self._boxes, self._query_box(query))
        return clamp_selectivity(float(self._weights @ frac), self.table.num_rows)

    def size_bytes(self) -> int:
        assert self._boxes is not None
        return (self._boxes.size + self._weights.size) * 4
