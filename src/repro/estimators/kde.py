"""Kernel-density estimator (Heimel/Kiefer-style, the paper's KDE baseline).

A Gaussian product kernel over a uniform sample with per-dimension
Scott's-rule bandwidths. For a box query the product kernel integrates in
closed form: each kernel contributes
``prod_i [Phi((hi_i - x_i)/h_i) - Phi((lo_i - x_i)/h_i)]``.

Optionally performs the query-feedback bandwidth tuning of the original
system: a multiplicative grid search on a shared bandwidth factor against
a training workload.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtr  # standard normal CDF, vectorised

from repro.data.table import Table
from repro.estimators.base import Estimator, clamp_selectivity
from repro.metrics import q_errors
from repro.query.query import Query
from repro.query.workload import Workload
from repro.utils.rng import ensure_rng


class KDE(Estimator):
    """Gaussian KDE with Scott bandwidths and optional feedback tuning."""

    name = "kde"

    def __init__(self, n_kernels: int = 2000, tune_bandwidth: bool = True, seed=None):
        super().__init__()
        self.n_kernels = n_kernels
        self.tune_bandwidth = tune_bandwidth
        self._rng = ensure_rng(seed)
        self._points: np.ndarray | None = None
        self._bandwidths: np.ndarray | None = None
        self._column_index: dict[str, int] = {}

    # ------------------------------------------------------------------
    def fit(self, table: Table, workload: Workload | None = None) -> "KDE":
        self._table = table
        self._column_index = {c.name: i for i, c in enumerate(table.columns)}
        sample = table.sample_rows(min(self.n_kernels, table.num_rows), rng=self._rng)
        self._points = sample.as_matrix()
        m, d = self._points.shape
        sigma = self._points.std(axis=0)
        sigma[sigma == 0] = 1.0
        # Scott's rule: h_i = sigma_i * m^(-1/(d+4)).
        self._bandwidths = sigma * m ** (-1.0 / (d + 4))

        if self.tune_bandwidth and workload is not None and len(workload) > 0:
            self._tune(workload)
        return self

    def _tune(self, workload: Workload) -> None:
        """Grid-search a global bandwidth multiplier on the workload."""
        base = self._bandwidths.copy()
        best_factor, best_err = 1.0, np.inf
        for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
            self._bandwidths = base * factor
            estimates = np.array([self._raw_estimate(q) for q in workload.queries])
            err = float(
                np.median(
                    q_errors(workload.true_selectivities, estimates, self.table.num_rows)
                )
            )
            if err < best_err:
                best_factor, best_err = factor, err
        self._bandwidths = base * best_factor

    # ------------------------------------------------------------------
    def _raw_estimate(self, query: Query) -> float:
        assert self._points is not None and self._bandwidths is not None
        contrib = np.ones(len(self._points))
        for name, constraint in query.constraints(self.table).items():
            i = self._column_index[name]
            x = self._points[:, i]
            h = self._bandwidths[i]
            mass = np.zeros(len(x))
            for lo, hi in constraint.intervals:
                mass += ndtr((hi - x) / h) - ndtr((lo - x) / h)
            contrib *= np.clip(mass, 0.0, 1.0)
        return float(contrib.mean())

    def estimate(self, query: Query) -> float:
        return clamp_selectivity(self._raw_estimate(query), self.table.num_rows)

    def size_bytes(self) -> int:
        assert self._points is not None
        return self._points.size * 4 + self._bandwidths.size * 4
