"""Uniform-sample estimator (the paper's "Sampling" baseline).

Keeps a uniform row sample sized to a space budget and answers queries by
exact evaluation on the sample. Excellent at the median, collapses on
low-selectivity (tail) queries — the behaviour Tables 2–4 show.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.errors import ConfigError
from repro.estimators.base import Estimator, clamp_selectivity
from repro.query.executor import execute_query
from repro.query.query import Query
from repro.query.workload import Workload
from repro.utils.rng import ensure_rng


class Sampling(Estimator):
    """Evaluate queries exactly on a uniform sample of the relation."""

    name = "sampling"

    def __init__(self, fraction: float | None = None, n_rows: int | None = None, seed=None):
        super().__init__()
        if (fraction is None) == (n_rows is None):
            raise ConfigError("specify exactly one of fraction / n_rows")
        if fraction is not None and not 0.0 < fraction <= 1.0:
            raise ConfigError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self.n_sample_rows = n_rows
        self._rng = ensure_rng(seed)
        self._sample: Table | None = None

    def fit(self, table: Table, workload: Workload | None = None) -> "Sampling":
        self._table = table
        size = (
            self.n_sample_rows
            if self.n_sample_rows is not None
            else max(1, int(round(self.fraction * table.num_rows)))
        )
        size = min(size, table.num_rows)
        idx = self._rng.choice(table.num_rows, size=size, replace=False)
        self._sample = table.take(idx)
        return self

    def estimate(self, query: Query) -> float:
        assert self._sample is not None
        sel = execute_query(self._sample, query).mean()
        return clamp_selectivity(float(sel), self.table.num_rows)

    def size_bytes(self) -> int:
        assert self._sample is not None
        return self._sample.num_rows * self._sample.num_columns * 8
