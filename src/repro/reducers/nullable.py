"""Nullable wrapper: adds a NULL token to any fitted reducer.

Full-outer-join samples pad unmatched satellite rows with NULLs. The
wrapped reducer is fitted on the non-null domain; this wrapper appends
one token (id = ``inner.n_tokens``) representing NULL. Range masses from
real predicates give the NULL token zero mass — a NULL never satisfies a
predicate — and :meth:`present_mass` is the "row exists" constraint used
for join-membership without predicates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.reducers.base import DomainReducer, Interval


class NullableReducer(DomainReducer):
    """Wrap a fitted reducer with an extra NULL token."""

    def __init__(self, inner: DomainReducer):
        self.inner = inner
        self.n_tokens = inner.n_tokens + 1
        self.is_exact = inner.is_exact

    @property
    def null_token(self) -> int:
        return self.inner.n_tokens

    def fit(self, values: np.ndarray) -> "NullableReducer":
        raise NotImplementedError(
            "NullableReducer wraps an already-fitted reducer"
        )  # pragma: no cover

    def transform(self, values: np.ndarray, null_mask: np.ndarray | None = None) -> np.ndarray:
        """Tokens; rows flagged in ``null_mask`` map to the NULL token."""
        if null_mask is None:
            return self.inner.transform(values)
        values = np.asarray(values, dtype=np.float64)
        out = np.full(len(values), self.null_token, dtype=np.int64)
        real = ~np.asarray(null_mask, dtype=bool)
        if real.any():
            out[real] = self.inner.transform(values[real])
        return out

    def range_mass(self, intervals: Sequence[Interval]) -> np.ndarray:
        inner = self.inner.range_mass(intervals)
        return np.concatenate([inner, [0.0]])

    def present_mass(self) -> np.ndarray:
        """Mass selecting any non-NULL token (join membership)."""
        mass = np.ones(self.n_tokens)
        mass[self.null_token] = 0.0
        return mass

    def size_bytes(self) -> int:
        return self.inner.size_bytes()
