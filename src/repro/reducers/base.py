"""The :class:`DomainReducer` interface."""

from __future__ import annotations

from typing import Sequence

import numpy as np

Interval = tuple[float, float]


class DomainReducer:
    """Maps raw column values to a (usually much smaller) token domain.

    Contract
    --------
    - ``fit(values)`` learns the mapping; returns self.
    - ``transform(values)`` -> int64 token ids in ``[0, n_tokens)``.
    - ``range_mass(intervals)`` -> (n_tokens,) array: for each token, the
      estimated probability that a value mapped to it lies inside the
      union of closed ``intervals``. Exact reducers return {0, 1}.
    - ``size_bytes()`` -> storage footprint for the model-size tables.
    - ``is_exact`` -> True when range_mass is an exact indicator, in
      which case the progressive sampler needs no bias correction.
    """

    n_tokens: int
    is_exact: bool = False

    def fit(self, values: np.ndarray) -> "DomainReducer":  # pragma: no cover - abstract
        raise NotImplementedError

    def transform(self, values: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def range_mass(self, intervals: Sequence[Interval]) -> np.ndarray:
        """Union-of-intervals mass: sum of per-interval masses, clipped.

        Subclasses implement :meth:`_interval_mass` for a single closed
        interval; disjointness of the intervals makes summation valid.
        """
        total = np.zeros(self.n_tokens)
        for low, high in intervals:
            total += self._interval_mass(float(low), float(high))
        return np.clip(total, 0.0, 1.0)

    def _interval_mass(self, low: float, high: float) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def size_bytes(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)
