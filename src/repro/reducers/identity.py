"""Exact (lossless) reduction: ordinal encoding of the distinct values.

Used for categorical columns and small-domain continuous columns — the
paper only sends columns with domain size > 1000 through GMMs.
"""

from __future__ import annotations

import numpy as np

from repro.data.encoding import OrdinalCodec
from repro.errors import NotFittedError
from repro.reducers.base import DomainReducer


class IdentityReducer(DomainReducer):
    """Order-preserving ordinal codec as a reducer (range masses exact)."""

    is_exact = True

    def __init__(self) -> None:
        self._codec: OrdinalCodec | None = None
        self.n_tokens = 0

    def fit(self, values: np.ndarray) -> "IdentityReducer":
        self._codec = OrdinalCodec(values)
        self.n_tokens = self._codec.vocab_size
        return self

    def _require_codec(self) -> OrdinalCodec:
        if self._codec is None:
            raise NotFittedError("IdentityReducer used before fit()")
        return self._codec

    @property
    def codec(self) -> OrdinalCodec:
        return self._require_codec()

    def transform(self, values: np.ndarray) -> np.ndarray:
        return self._require_codec().encode(values)

    def _interval_mass(self, low: float, high: float) -> np.ndarray:
        return self._require_codec().range_mask(low, high)

    def size_bytes(self) -> int:
        return self._require_codec().vocab_size * 4
