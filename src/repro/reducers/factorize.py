"""Neurocard-style column factorization (lossless, Section 4.2).

A column with domain size D is split into ``n = ceil(log_B(D))`` digit
subcolumns of base ``B`` (``B = ceil(D^(1/n))`` for the smallest n with
``B <= max_subdomain``; the paper caps subcolumn size at 2^11): token
``t = sum_j d_j * B^(n-1-j)`` with ``d_0`` most significant. This reduces
the AR model's input/output widths from D to ~n*D^(1/n) without
information loss — but, unlike GMM reduction, it does **not** shrink the
sample space, which is the paper's core argument.

Range predicates on a factorized column need order-aware handling in the
progressive sampler. For a token interval ``[lo, hi]`` and a sampled
more-significant prefix ``P`` (the value contributed by digits
``0..j-1``), digit j with place value ``W = B^(n-1-j)`` is valid iff the
span it controls, ``[P + d*W, P + d*W + W - 1]``, intersects some queried
interval::

    ceil((lo - P - W + 1) / W)  <=  d  <=  floor((hi - P) / W)

:meth:`constraints` returns one
:class:`~repro.ar.progressive.SlotConstraint` per digit implementing
exactly that (static mass for digit 0, per-sample masks after), which
keeps vanilla progressive sampling unbiased.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.ar.progressive import SlotConstraint
from repro.data.encoding import OrdinalCodec
from repro.errors import ConfigError

Interval = tuple[float, float]


def _choose_base(total: int, max_subdomain: int) -> tuple[int, int]:
    """Smallest digit count n (and its base B) with B <= max_subdomain."""
    for n_digits in range(2, 65):
        base = int(math.ceil(total ** (1.0 / n_digits)))
        # Guard float rounding: base must actually cover the domain.
        while base**n_digits < total:
            base += 1
        if base <= max_subdomain:
            return base, n_digits
    raise ConfigError(f"cannot factorize a domain of {total} values")  # pragma: no cover


class ColumnFactorizer:
    """n-way digit decomposition of an ordinal-encoded column."""

    def __init__(
        self,
        distinct_values: np.ndarray,
        max_subdomain: int = 2**11,
        n_extra_tokens: int = 0,
    ):
        self.codec = OrdinalCodec(distinct_values)
        d = self.codec.vocab_size
        if d < 2:
            raise ConfigError("factorization needs a domain of at least 2 values")
        # Extra tokens (e.g. a NULL pad for outer-join samples) extend the
        # token space beyond the real domain: ids d, d+1, ...
        self.n_extra_tokens = n_extra_tokens
        total = d + n_extra_tokens
        self.base, self.n_digits = _choose_base(total, max_subdomain)
        self._total = total
        # Place values, most-significant digit first.
        self.place_values = [self.base ** (self.n_digits - 1 - j) for j in range(self.n_digits)]
        # Per-digit vocabularies: the leading digit only needs to reach
        # the largest token; lower digits span the full base.
        self.digit_vocabs = [
            min((total - 1) // self.place_values[0] + 1, self.base),
            *[self.base] * (self.n_digits - 1),
        ]

    @property
    def domain_size(self) -> int:
        return self.codec.vocab_size

    # Backwards-compatible aliases for the common two-digit case.
    @property
    def hi_vocab(self) -> int:
        return self.digit_vocabs[0]

    @property
    def lo_vocab(self) -> int:
        return self.digit_vocabs[-1]

    # ------------------------------------------------------------------
    def encode_tokens(self, tokens: np.ndarray) -> np.ndarray:
        """(N, n_digits) digit decomposition of token ids (incl. extras)."""
        tokens = np.asarray(tokens, dtype=np.int64)
        digits = np.empty((len(tokens), self.n_digits), dtype=np.int64)
        remainder = tokens
        for j, place in enumerate(self.place_values):
            digits[:, j] = remainder // place
            remainder = remainder % place
        return digits

    def encode(self, values: np.ndarray) -> np.ndarray:
        """(N, n_digits) array of digit tokens for raw values."""
        return self.encode_tokens(self.codec.encode(values))

    def decode(self, digits: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`encode` (digits must form valid tokens)."""
        digits = np.asarray(digits, dtype=np.int64)
        tokens = sum(digits[:, j] * self.place_values[j] for j in range(self.n_digits))
        return self.codec.decode(tokens)

    # ------------------------------------------------------------------
    def constraints(
        self, intervals: Sequence[Interval], slot_indices: Sequence[int] | int
    ) -> list[SlotConstraint]:
        """Per-digit sampler constraints for a union of raw-value intervals.

        ``slot_indices``: the sampler slot ids holding this column's
        digits, most significant first (an int is accepted for the
        two-digit case, meaning ``(i, i+1)``).
        """
        if isinstance(slot_indices, (int, np.integer)):
            slot_indices = [slot_indices + j for j in range(self.n_digits)]
        slot_indices = list(slot_indices)
        if len(slot_indices) != self.n_digits:
            raise ConfigError(
                f"expected {self.n_digits} slot indices, got {len(slot_indices)}"
            )

        token_ranges: list[tuple[int, int]] = []
        for low, high in intervals:
            lo_t, hi_t = self.codec.range_to_tokens(float(low), float(high))
            if lo_t <= hi_t:
                token_ranges.append((lo_t, hi_t))

        place_values = self.place_values
        digit_vocabs = self.digit_vocabs

        def digit_mask_rows(prefix: np.ndarray, j: int) -> np.ndarray:
            """(len(prefix), digit_vocab) 0/1 masks for digit j.

            Vectorised range fill: +1/-1 deltas at the range boundaries
            followed by a cumulative sum along the digit axis.
            """
            w = place_values[j]
            vocab = digit_vocabs[j]
            delta = np.zeros((len(prefix), vocab + 1))
            rows = np.arange(len(prefix))
            for lo_t, hi_t in token_ranges:
                d_min = -(-(lo_t - prefix - w + 1) // w)  # ceil division
                d_max = (hi_t - prefix) // w
                d_min = np.clip(d_min, 0, vocab)
                d_max = np.clip(d_max, -1, vocab - 1)
                valid = d_min <= d_max
                np.add.at(delta, (rows[valid], d_min[valid]), 1.0)
                np.add.at(delta, (rows[valid], d_max[valid] + 1), -1.0)
            return np.minimum(np.cumsum(delta[:, :-1], axis=1), 1.0)

        out: list[SlotConstraint] = []
        # Digit 0: static mass (no sampled prefix yet).
        first = digit_mask_rows(np.zeros(1, dtype=np.int64), 0)[0]
        out.append(SlotConstraint(mass=first))
        for j in range(1, self.n_digits):

            def per_sample(sampled_tokens: np.ndarray, j=j) -> np.ndarray:
                prefix = np.zeros(len(sampled_tokens), dtype=np.int64)
                for i in range(j):
                    prefix += sampled_tokens[:, slot_indices[i]] * place_values[i]
                return digit_mask_rows(prefix, j)

            out.append(SlotConstraint(per_sample=per_sample))
        return out

    def size_bytes(self) -> int:
        """Codec storage (the distinct-value array)."""
        return self.codec.vocab_size * 4
