"""Spline-histogram reducer (Section 6.6 alternative 2).

Following Neumann & Michel's smooth interpolating histograms: a
piecewise-linear spline approximates the empirical CDF, with knots
placed greedily at the points of maximum CDF deviation (minimising the
maximum interpolation error). Buckets are the inter-knot segments;
inside a bucket the CDF is linear, i.e. the density is uniform — so
``range_mass`` is the overlapped fraction in *value* space, like a
histogram whose bucket boundaries were chosen by the spline.
"""

from __future__ import annotations

import numpy as np

from repro.data.discretize import discretize
from repro.errors import NotFittedError
from repro.reducers.base import DomainReducer


def greedy_spline_knots(values: np.ndarray, n_knots: int) -> np.ndarray:
    """Greedy max-error knot placement on the empirical CDF.

    Start with the two extreme knots; repeatedly insert a knot where the
    piecewise-linear interpolation of the CDF deviates most from the
    empirical CDF, until ``n_knots`` knots exist (or no deviation
    remains).
    """
    xs = np.sort(np.unique(values))
    if len(xs) <= 2:
        return xs if len(xs) == 2 else np.array([xs[0], xs[0] + 1.0])
    sorted_values = np.sort(values)
    cdf = np.searchsorted(sorted_values, xs, side="right") / len(values)

    knot_idx = [0, len(xs) - 1]
    while len(knot_idx) < n_knots:
        knots = sorted(knot_idx)
        interp = np.interp(xs, xs[knots], cdf[knots])
        error = np.abs(interp - cdf)
        error[knots] = 0.0
        worst = int(np.argmax(error))
        if error[worst] <= 0.0:
            break
        knot_idx.append(worst)
    return xs[sorted(set(knot_idx))]


class SplineReducer(DomainReducer):
    """Reduce to spline-segment ids; CDF linear inside each segment."""

    is_exact = False

    def __init__(self, n_knots: int = 30):
        self.n_knots = max(n_knots, 2)
        self.knots: np.ndarray | None = None
        self.n_tokens = 0

    def fit(self, values: np.ndarray) -> "SplineReducer":
        self.knots = greedy_spline_knots(np.asarray(values, dtype=np.float64), self.n_knots)
        self.n_tokens = len(self.knots) - 1
        return self

    def _require_knots(self) -> np.ndarray:
        if self.knots is None:
            raise NotFittedError("SplineReducer used before fit()")
        return self.knots

    def transform(self, values: np.ndarray) -> np.ndarray:
        return discretize(values, self._require_knots())

    def _interval_mass(self, low: float, high: float) -> np.ndarray:
        knots = self._require_knots()
        lows, highs = knots[:-1], knots[1:]
        overlap = np.minimum(highs, high) - np.maximum(lows, low)
        width = highs - lows
        with np.errstate(invalid="ignore", divide="ignore"):
            frac = np.where(width > 0, np.clip(overlap, 0.0, None) / width, 0.0)
        frac = np.where(width > 0, frac, ((lows >= low) & (lows <= high)).astype(float))
        return np.clip(frac, 0.0, 1.0)

    def size_bytes(self) -> int:
        return len(self._require_knots()) * 4
