"""Log-domain GMM reducer — the paper's "other mixture models" future work.

A mixture of log-normals: fit the GMM to ``log(x - shift)`` where shift
places the support just below the column minimum. For heavily
right-skewed positive columns (HIGGS-like), log-space components match
the data geometry far better than raw-space Gaussians, whose variance is
dominated by the tail.

The reducer delegates to :class:`GMMReducer` in log space and transforms
query intervals into log space before computing range masses — masses are
invariant under the monotone transform, so everything downstream
(unbiased sampling, Theorem 5.1) carries over unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.reducers.base import DomainReducer
from repro.reducers.gmm_reducer import GMMReducer


class LogGMMReducer(DomainReducer):
    """GMM over log-transformed values for right-skewed columns."""

    is_exact = False

    def __init__(self, n_components: int | None = 30, interval_kind: str = "empirical",
                 samples_per_component: int = 10_000, sgd_epochs: int = 8, seed=None):
        self._inner = GMMReducer(
            n_components=n_components,
            interval_kind=interval_kind,
            samples_per_component=samples_per_component,
            sgd_epochs=sgd_epochs,
            seed=seed,
        )
        self._shift: float | None = None
        self.n_tokens = 0

    # ------------------------------------------------------------------
    def _to_log(self, values: np.ndarray) -> np.ndarray:
        return np.log(np.maximum(np.asarray(values, dtype=np.float64) - self._shift, 1e-300))

    def fit(self, values: np.ndarray) -> "LogGMMReducer":
        values = np.asarray(values, dtype=np.float64)
        spread = float(values.max() - values.min()) or 1.0
        self._shift = float(values.min()) - 1e-6 * spread
        self._inner.fit(self._to_log(values))
        self.n_tokens = self._inner.n_tokens
        return self

    def _require_fit(self) -> None:
        if self._shift is None:
            raise NotFittedError("LogGMMReducer used before fit()")

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fit()
        return self._inner.transform(self._to_log(values))

    def _interval_mass(self, low: float, high: float) -> np.ndarray:
        self._require_fit()
        if high < low:
            return np.zeros(self.n_tokens)
        # Clamp below the support: everything <= shift has zero mass.
        log_low = float(self._to_log(np.array([max(low, self._shift + 1e-300)]))[0])
        log_high = float(self._to_log(np.array([max(high, self._shift + 1e-300)]))[0])
        return self._inner._interval_mass(log_low, log_high)

    def size_bytes(self) -> int:
        return self._inner.size_bytes() + 4  # + the shift

    @property
    def mixture(self):
        """The underlying (log-space) mixture, for inspection."""
        return self._inner.mixture
