"""Equi-depth histogram reducer (Section 6.6 alternative 1).

Buckets hold (approximately) equal numbers of points. ``range_mass``
applies the uniform-spread assumption inside each bucket — the
assumption the paper identifies as the cause of the alternatives' large
tail errors on skewed data.
"""

from __future__ import annotations

import numpy as np

from repro.data.discretize import discretize, equal_depth_edges
from repro.errors import NotFittedError
from repro.reducers.base import DomainReducer


class EquiDepthReducer(DomainReducer):
    """Reduce to equi-depth bucket ids; uniform assumption inside buckets."""

    is_exact = False

    def __init__(self, n_bins: int = 30):
        self.n_bins = n_bins
        self.edges: np.ndarray | None = None
        self.n_tokens = 0

    def fit(self, values: np.ndarray) -> "EquiDepthReducer":
        self.edges = equal_depth_edges(np.asarray(values, dtype=np.float64), self.n_bins)
        self.n_tokens = len(self.edges) - 1
        return self

    def _require_edges(self) -> np.ndarray:
        if self.edges is None:
            raise NotFittedError("EquiDepthReducer used before fit()")
        return self.edges

    def transform(self, values: np.ndarray) -> np.ndarray:
        return discretize(values, self._require_edges())

    def _interval_mass(self, low: float, high: float) -> np.ndarray:
        edges = self._require_edges()
        lows = edges[:-1]
        highs = edges[1:]
        overlap = np.minimum(highs, high) - np.maximum(lows, low)
        width = highs - lows
        with np.errstate(invalid="ignore", divide="ignore"):
            frac = np.where(width > 0, np.clip(overlap, 0.0, None) / width, 0.0)
        # Degenerate zero-width buckets (heavy ties): in or out entirely.
        frac = np.where(width > 0, frac, ((lows >= low) & (lows <= high)).astype(float))
        return np.clip(frac, 0.0, 1.0)

    def size_bytes(self) -> int:
        return len(self._require_edges()) * 4
