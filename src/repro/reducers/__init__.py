"""Domain-reduction strategies for large-domain columns.

The heart of the paper is reducing a continuous column's domain before
the AR model sees it. :class:`GMMReducer` is the paper's method; the
equi-depth histogram, spline histogram, and uniform-mixture reducers are
the Section 6.6 alternatives; :class:`IdentityReducer` is the exact
(no-reduction) path used for categorical / small-domain columns; and
:class:`ColumnFactorizer` is Neurocard's lossless alternative used by the
Naru/Neurocard baseline.

Every reducer maps raw values to tokens and — crucially for the unbiased
sampler — reports ``range_mass(intervals)``: the probability that a value
carrying each token lies inside the queried range. Exact codecs return
0/1 indicators; lossy reducers return fractional masses (the bias
correction of Section 5.2 for GMMs, the uniform-spread assumption for the
bucket-based alternatives — which is precisely why their tail errors
explode in Tables 9–11).
"""

from repro.reducers.base import DomainReducer
from repro.reducers.identity import IdentityReducer
from repro.reducers.gmm_reducer import GMMReducer
from repro.reducers.loggmm import LogGMMReducer
from repro.reducers.equidepth import EquiDepthReducer
from repro.reducers.spline import SplineReducer
from repro.reducers.umm import UniformMixtureReducer
from repro.reducers.factorize import ColumnFactorizer
from repro.reducers.nullable import NullableReducer

__all__ = [
    "DomainReducer",
    "IdentityReducer",
    "GMMReducer",
    "LogGMMReducer",
    "EquiDepthReducer",
    "SplineReducer",
    "UniformMixtureReducer",
    "ColumnFactorizer",
    "NullableReducer",
]


def make_reducer(kind: str, n_components: int = 30, seed=None) -> DomainReducer:
    """Factory over the lossy reducers compared in Section 6.6."""
    from repro.errors import ConfigError

    if kind == "gmm":
        return GMMReducer(n_components=n_components, seed=seed)
    if kind == "loggmm":
        return LogGMMReducer(n_components=n_components, seed=seed)
    if kind == "hist":
        return EquiDepthReducer(n_bins=n_components)
    if kind == "spline":
        return SplineReducer(n_knots=n_components)
    if kind == "umm":
        return UniformMixtureReducer(n_components=n_components, seed=seed)
    raise ConfigError(f"unknown reducer kind {kind!r}")
