"""GMM-based domain reduction — the paper's method (Section 4.2).

Pipeline per column:

1. choose K (fixed, or via VBGMM on a uniform sample) and initialise;
2. train by SGD on the NLL — either standalone here, or jointly inside
   IAM via the exposed :attr:`module`;
3. ``transform``: argmax-responsibility component index (Equation 5);
4. ``range_mass``: the per-component range probabilities
   ``P_GMM^k(R_i)`` used by the unbiased sampler, computed by the
   configured interval estimator (Monte-Carlo per the paper, exact CDF,
   or empirical fractions).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, NotFittedError
from repro.mixtures.base import GaussianMixture1D
from repro.mixtures.em import init_params
from repro.mixtures.interval import IntervalMassEstimator, make_interval_estimator
from repro.mixtures.sgd_gmm import SGDGaussianMixture
from repro.mixtures.vbgmm import select_components
from repro.reducers.base import DomainReducer
from repro.utils.rng import ensure_rng


class GMMReducer(DomainReducer):
    """Reduce a continuous column to GMM component indices.

    Parameters
    ----------
    n_components:
        Fixed K, or ``None`` to let the VBGMM choose (paper default is a
        fixed 30, "can be decided by VBGM automatically").
    interval_kind:
        'montecarlo' (paper), 'exact', or 'empirical'.
    samples_per_component:
        S in the paper's Monte-Carlo interval estimator (default 10K).
    sgd_epochs:
        Standalone-fit epochs; ignored when IAM co-trains the module.
    """

    is_exact = False

    def __init__(
        self,
        n_components: int | None = 30,
        interval_kind: str = "montecarlo",
        samples_per_component: int = 10_000,
        sgd_epochs: int = 8,
        sgd_batch_size: int = 2048,
        sgd_lr: float = 5e-2,
        max_vb_components: int = 50,
        seed=None,
    ):
        if n_components is not None and n_components < 1:
            raise ConfigError("n_components must be >= 1 or None")
        self.n_components = n_components
        self.interval_kind = interval_kind
        self.samples_per_component = samples_per_component
        self.sgd_epochs = sgd_epochs
        self.sgd_batch_size = sgd_batch_size
        self.sgd_lr = sgd_lr
        self.max_vb_components = max_vb_components
        self._rng = ensure_rng(seed)
        self.module: SGDGaussianMixture | None = None
        self.mixture: GaussianMixture1D | None = None
        self._interval: IntervalMassEstimator | None = None
        self._fit_values: np.ndarray | None = None
        self.n_tokens = 0

    # ------------------------------------------------------------------
    def initialise(self, values: np.ndarray) -> SGDGaussianMixture:
        """Build the trainable module (VBGMM or k-means++ init), no SGD yet.

        IAM calls this and then owns the SGD updates inside its joint
        training loop; ``finalise`` must be called afterwards.
        """
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if self.n_components is None:
            _, init = select_components(
                values, max_components=self.max_vb_components, seed=self._rng
            )
        else:
            init = init_params(values, self.n_components, rng=self._rng)
        loc = float(values.mean())
        scale = float(values.std()) or 1.0
        self.module = SGDGaussianMixture(init, loc=loc, scale=scale)
        self._fit_values = values
        return self.module

    def finalise(self) -> "GMMReducer":
        """Freeze the trained module and build the interval estimator."""
        if self.module is None or self._fit_values is None:
            raise NotFittedError("initialise() must run before finalise()")
        self.mixture = self.module.freeze()
        self.n_tokens = self.mixture.n_components
        self._interval = make_interval_estimator(
            self.interval_kind,
            self.mixture,
            values=self._fit_values,
            samples_per_component=self.samples_per_component,
            seed=self._rng,
        )
        return self

    # ------------------------------------------------------------------
    def fit(self, values: np.ndarray) -> "GMMReducer":
        """Standalone fit: initialise + SGD on the NLL + finalise."""
        from repro.nn.optim import Adam

        module = self.initialise(values)
        values = self._fit_values
        optimizer = Adam(module.parameters(), lr=self.sgd_lr)
        for _ in range(self.sgd_epochs):
            order = self._rng.permutation(len(values))
            for start in range(0, len(values), self.sgd_batch_size):
                batch = values[order[start : start + self.sgd_batch_size]]
                loss = module.nll(batch)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        return self.finalise()

    # ------------------------------------------------------------------
    def _require_mixture(self) -> GaussianMixture1D:
        if self.mixture is None:
            raise NotFittedError("GMMReducer used before fit()/finalise()")
        return self.mixture

    def transform(self, values: np.ndarray) -> np.ndarray:
        return self._require_mixture().assign(np.asarray(values, dtype=np.float64))

    def _interval_mass(self, low: float, high: float) -> np.ndarray:
        self._require_mixture()
        assert self._interval is not None
        return self._interval.masses(low, high)

    def size_bytes(self) -> int:
        return self._require_mixture().size_bytes()
