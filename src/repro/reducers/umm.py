"""Uniform-mixture-model reducer (Section 6.6 alternative 3).

A mixture of K overlapping uniform "buckets" with learnable weights —
the model family QuickSel fits from queries, here fitted from data as a
domain reducer. Buckets are overlapping quantile windows; weights are
estimated by EM over the (fixed-support) mixture. A value's token is its
argmax-responsibility bucket; inside a bucket the density is uniform.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.reducers.base import DomainReducer
from repro.utils.rng import ensure_rng


class UniformMixtureReducer(DomainReducer):
    """Reduce to argmax-responsibility uniform-bucket ids."""

    is_exact = False

    def __init__(self, n_components: int = 30, em_iters: int = 30, seed=None):
        self.n_components = n_components
        self.em_iters = em_iters
        self._rng = ensure_rng(seed)
        self.lows: np.ndarray | None = None
        self.highs: np.ndarray | None = None
        self.weights: np.ndarray | None = None
        self.n_tokens = 0

    # ------------------------------------------------------------------
    def fit(self, values: np.ndarray) -> "UniformMixtureReducer":
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        k = self.n_components
        # Overlapping quantile windows: component j spans quantiles
        # [j/(k+1), (j+2)/(k+1)] — neighbours overlap by half a window.
        qs = np.linspace(0.0, 1.0, k + 2)
        anchors = np.quantile(values, qs)
        lows = anchors[:-2].copy()
        highs = anchors[2:].copy()
        # Guard zero-width windows from duplicated quantiles.
        eps = max((values.max() - values.min()) * 1e-9, 1e-12)
        highs = np.maximum(highs, lows + eps)
        weights = np.full(k, 1.0 / k)

        densities = np.zeros((len(values), k))
        for j in range(k):
            inside = (values >= lows[j]) & (values <= highs[j])
            densities[inside, j] = 1.0 / (highs[j] - lows[j])

        for _ in range(self.em_iters):  # EM over the weights only
            joint = densities * weights[None, :]
            norm = joint.sum(axis=1, keepdims=True)
            norm[norm == 0] = 1.0
            resp = joint / norm
            weights = resp.mean(axis=0)
            weights = np.clip(weights, 1e-12, None)
            weights /= weights.sum()

        self.lows, self.highs, self.weights = lows, highs, weights
        self.n_tokens = k
        return self

    # ------------------------------------------------------------------
    def _require_fit(self) -> None:
        if self.lows is None:
            raise NotFittedError("UniformMixtureReducer used before fit()")

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._require_fit()
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        width = self.highs - self.lows
        inside = (values[:, None] >= self.lows[None, :]) & (
            values[:, None] <= self.highs[None, :]
        )
        joint = inside * (self.weights / width)[None, :]
        # Values outside every bucket (numerical edges) go to the nearest.
        tokens = np.argmax(joint, axis=1)
        orphan = ~inside.any(axis=1)
        if orphan.any():
            centers = (self.lows + self.highs) / 2.0
            tokens[orphan] = np.argmin(
                np.abs(values[orphan, None] - centers[None, :]), axis=1
            )
        return tokens.astype(np.int64)

    def _interval_mass(self, low: float, high: float) -> np.ndarray:
        self._require_fit()
        overlap = np.minimum(self.highs, high) - np.maximum(self.lows, low)
        frac = np.clip(overlap, 0.0, None) / (self.highs - self.lows)
        return np.clip(frac, 0.0, 1.0)

    def size_bytes(self) -> int:
        self._require_fit()
        return 3 * self.n_tokens * 4
