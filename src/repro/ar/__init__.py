"""Deep autoregressive substrate: MADE / ResMADE and progressive sampling.

The paper follows Naru/Neurocard in using ResMADE as the density
estimator (Section 3). This package provides the model (with per-column
embeddings, per-column output heads, and wildcard skipping), its trainer,
and the progressive-sampling machinery that both the Naru/Neurocard
baseline and IAM's unbiased variant are built on.
"""

from repro.ar.order import heuristic_order, identity_order, random_order, validate_order
from repro.ar.made import MADE, build_made
from repro.ar.train import ARTrainer, TrainConfig
from repro.ar.progressive import ProgressiveSampler, SlotConstraint

__all__ = [
    "identity_order",
    "random_order",
    "heuristic_order",
    "validate_order",
    "MADE",
    "build_made",
    "ARTrainer",
    "TrainConfig",
    "ProgressiveSampler",
    "SlotConstraint",
]
