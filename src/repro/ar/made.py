"""MADE / ResMADE with per-column embeddings and output heads.

Architecture (following Naru/Neurocard's usage of ResMADE):

- each column's token id (plus a reserved wildcard id) is embedded;
- embeddings are concatenated and pushed through masked layers whose
  binary masks enforce that the logits for the column at AR position p
  depend only on columns at positions < p;
- the output layer produces one logits block per column (width = that
  column's vocabulary).

Two stacks are supported through one class:

- ``residual=False`` — classic MADE: a chain of masked linear + ReLU
  layers of arbitrary widths (e.g. the paper's 256/128/128/256);
- ``residual=True`` — ResMADE: uniform-width masked residual blocks.
  Residual connections preserve the autoregressive property because all
  hidden layers share one degree assignment.

Wildcard skipping (Naru Section 5.2, used by the paper): every embedding
table has one extra row, the *wildcard token* (id == vocab_size), used
both during training (random input masking) and inference (unqueried
columns).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor
from repro.errors import ConfigError
from repro.nn.blocks import MaskedResidualBlock
from repro.nn.container import ModuleList
from repro.nn.embedding import Embedding
from repro.nn.linear import MaskedLinear
from repro.nn.module import Module
from repro.ar.order import identity_order, validate_order
from repro.utils.rng import ensure_rng


def _embed_width(vocab: int, embed_dim: int | str) -> int:
    """Embedding width for one column.

    Fixed integer: ``min(embed_dim, vocab + 1)``. ``"auto"``: scale with
    the vocabulary, ``clip(2 * ceil(vocab^0.25), 4, 64)`` capped at
    ``vocab + 1``.
    """
    if embed_dim == "auto":
        width = int(np.clip(2 * int(np.ceil(vocab**0.25)), 4, 64))
        return min(width, vocab + 1)
    if not isinstance(embed_dim, int) or embed_dim < 1:
        raise ConfigError(f"embed_dim must be a positive int or 'auto', got {embed_dim!r}")
    return min(embed_dim, vocab + 1)


def _hidden_degrees(n_columns: int, width: int) -> np.ndarray:
    """Round-robin hidden-unit degrees in [1, max(n_columns - 1, 1)]."""
    top = max(n_columns - 1, 1)
    return (np.arange(width) % top) + 1


def build_masks(
    n_columns: int,
    embed_widths: Sequence[int],
    vocab_sizes: Sequence[int],
    hidden_widths: Sequence[int],
    positions: np.ndarray,
) -> list[np.ndarray]:
    """Binary masks for input->h1, h_i->h_{i+1}, ..., h_last->output.

    ``positions[k]`` is column k's AR position (0-based). Input units of
    column k carry degree ``positions[k] + 1``; an edge into a hidden unit
    of degree d is allowed from degree <= d; the output block of column k
    accepts hidden degrees <= positions[k] (strictly smaller than its own
    degree), so position-0 logits depend on nothing but biases.
    """
    in_degrees = np.concatenate(
        [np.full(w, positions[k] + 1) for k, w in enumerate(embed_widths)]
    )
    degree_layers = [in_degrees]
    for width in hidden_widths:
        degree_layers.append(_hidden_degrees(n_columns, width))
    masks = []
    for previous, current in zip(degree_layers[:-1], degree_layers[1:]):
        masks.append((previous[:, None] <= current[None, :]).astype(np.float64))
    out_degrees = np.concatenate(
        [np.full(v, positions[k]) for k, v in enumerate(vocab_sizes)]
    )
    masks.append((degree_layers[-1][:, None] <= out_degrees[None, :]).astype(np.float64))
    return masks


class MADE(Module):
    """Masked autoregressive density estimator over tokenised columns."""

    def __init__(
        self,
        vocab_sizes: Sequence[int],
        hidden_sizes: Sequence[int] = (64, 64),
        embed_dim: int | str = 16,
        order: np.ndarray | None = None,
        residual: bool = False,
        seed=None,
    ):
        super().__init__()
        rng = ensure_rng(seed)
        self.vocab_sizes = [int(v) for v in vocab_sizes]
        if any(v < 1 for v in self.vocab_sizes):
            raise ConfigError(f"vocab sizes must be >= 1, got {self.vocab_sizes}")
        self.n_columns = len(self.vocab_sizes)
        self.positions = (
            identity_order(self.n_columns)
            if order is None
            else validate_order(order, self.n_columns)
        )
        self.residual = residual
        if residual and len(set(hidden_sizes)) != 1:
            raise ConfigError("ResMADE requires equal hidden widths")

        # Per-column embeddings; small vocabularies get vocab-sized
        # embeddings (dense one-hot-like), large ones get embed_dim.
        # embed_dim="auto" scales each column's width with its vocabulary
        # (~v^0.25, the Naru codebase heuristic), so huge factorized
        # subcolumns don't get the same budget as 3-value categoricals.
        self.embed_widths = [
            _embed_width(v, embed_dim) for v in self.vocab_sizes
        ]
        self.embeddings = ModuleList(
            Embedding(v + 1, w, rng=rng)  # +1 row: the wildcard token
            for v, w in zip(self.vocab_sizes, self.embed_widths)
        )

        masks = build_masks(
            self.n_columns, self.embed_widths, self.vocab_sizes, hidden_sizes, self.positions
        )
        input_width = sum(self.embed_widths)

        if residual:
            width = hidden_sizes[0]
            self.input_layer = MaskedLinear(input_width, width, rng=rng)
            self.input_layer.set_mask(masks[0])
            blocks = []
            for mask in masks[1:-1]:
                block = MaskedResidualBlock(width, rng=rng)
                block.set_mask(mask)
                blocks.append(block)
            self.blocks = ModuleList(blocks)
            self.output_layer = MaskedLinear(width, sum(self.vocab_sizes), rng=rng)
            self.output_layer.set_mask(masks[-1])
        else:
            layers = []
            widths = [input_width, *hidden_sizes]
            for i, mask in enumerate(masks[:-1]):
                layer = MaskedLinear(widths[i], widths[i + 1], rng=rng)
                layer.set_mask(mask)
                layers.append(layer)
            self.hidden_layers = ModuleList(layers)
            self.output_layer = MaskedLinear(widths[-1], sum(self.vocab_sizes), rng=rng)
            self.output_layer.set_mask(masks[-1])

        self._output_slices = []
        start = 0
        for v in self.vocab_sizes:
            self._output_slices.append(slice(start, start + v))
            start += v

    # ------------------------------------------------------------------
    @property
    def wildcard_ids(self) -> np.ndarray:
        """Per-column wildcard token id (== vocab size)."""
        return np.asarray(self.vocab_sizes, dtype=np.int64)

    def ar_order(self) -> list[int]:
        """Column indices in sampling order (position 0 first)."""
        return list(np.argsort(self.positions, kind="stable"))

    # ------------------------------------------------------------------
    def _embed(self, tokens: np.ndarray, wildcard_mask: np.ndarray | None) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2 or tokens.shape[1] != self.n_columns:
            raise ConfigError(
                f"tokens must be (batch, {self.n_columns}), got {tokens.shape}"
            )
        pieces = []
        for k, embedding in enumerate(self.embeddings):
            ids = tokens[:, k]
            if wildcard_mask is not None:
                ids = np.where(wildcard_mask[:, k], self.vocab_sizes[k], ids)
            pieces.append(embedding(ids))
        return ops.concat(pieces, axis=1)

    def _hidden(self, x: Tensor) -> Tensor:
        """Trunk up to (but excluding) the output projection."""
        if self.residual:
            h = self.input_layer(x)
            for block in self.blocks:
                h = block(h)
            return ops.relu(h)
        h = x
        for layer in self.hidden_layers:
            h = ops.relu(layer(h))
        return h

    def forward(
        self, tokens: np.ndarray, wildcard_mask: np.ndarray | None = None
    ) -> list[Tensor]:
        """Logits per column: a list of (batch, vocab_k) tensors.

        ``wildcard_mask`` marks input entries to replace with the wildcard
        token (the logits for those columns are still produced — during
        training they teach the model the marginalised conditionals).
        """
        out = self.output_layer(self._hidden(self._embed(tokens, wildcard_mask)))
        return [out[:, s] for s in self._output_slices]

    def column_logits(
        self, column: int, tokens: np.ndarray, wildcard_mask: np.ndarray | None = None
    ) -> Tensor:
        """Logits for one column only (used by the progressive sampler).

        Only the relevant slice of the output projection is computed,
        which matters when other columns have large vocabularies.
        """
        h = self._hidden(self._embed(tokens, wildcard_mask))
        s = self._output_slices[column]
        layer = self.output_layer
        weight = layer.weight[:, s] * Tensor(layer.mask[:, s])
        out = h @ weight
        if layer.bias is not None:
            out = out + layer.bias[s]
        return out

    # ------------------------------------------------------------------
    def log_likelihood(
        self, tokens: np.ndarray, wildcard_mask: np.ndarray | None = None
    ) -> Tensor:
        """(batch,) log p(tuple) under the model (sum of conditionals)."""
        logits = self.forward(tokens, wildcard_mask)
        total = None
        for k, block in enumerate(logits):
            logp = ops.log_softmax(block, axis=-1)
            picked = ops.gather(logp, tokens[:, k], axis=-1).reshape(-1)
            total = picked if total is None else total + picked
        return total


def build_made(
    vocab_sizes: Sequence[int],
    arch: str = "resmade",
    hidden_sizes: Sequence[int] | None = None,
    embed_dim: int | str = 16,
    order: np.ndarray | None = None,
    seed=None,
) -> MADE:
    """Factory for the two architectures the paper references.

    ``arch='made'`` defaults to the paper's 256/128/128/256 stack;
    ``arch='resmade'`` (the paper's choice) defaults to two 128-wide
    residual blocks.
    """
    if arch == "made":
        hidden = tuple(hidden_sizes) if hidden_sizes else (256, 128, 128, 256)
        return MADE(vocab_sizes, hidden, embed_dim, order, residual=False, seed=seed)
    if arch == "resmade":
        hidden = tuple(hidden_sizes) if hidden_sizes else (128, 128, 128)
        if len(set(hidden)) != 1:
            raise ConfigError("resmade hidden sizes must be uniform")
        return MADE(vocab_sizes, hidden, embed_dim, order, residual=True, seed=seed)
    raise ConfigError(f"unknown architecture {arch!r} (expected 'made' or 'resmade')")
