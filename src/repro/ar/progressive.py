"""Progressive sampling over a MADE model.

One sampler serves every AR-based estimator in this repository; the
behaviour differences are carried entirely by per-column
:class:`SlotConstraint` objects:

- Naru / Neurocard on a plain column: ``mass`` is the 0/1 indicator of
  tokens inside the query range (vanilla progressive sampling, proven
  unbiased in Naru);
- IAM on a GMM-reduced column: ``mass`` is the per-component range
  probability vector ``P_GMM(R_i)`` — the paper's Section 5.2 bias
  correction (the product ``P_AR(k | prefix) * P_GMM^k(R_i)`` is formed
  inside the sampler);
- Neurocard on a factorized column: the high subcolumn uses an indicator
  over digit values and the low subcolumn's valid set depends on the
  sampled high digit, supplied through ``per_sample``;
- join support: ``scale`` applies NeuroCard's fanout down-scaling
  ``1/f`` to each sample after the token is drawn;
- unqueried columns: constraint ``None`` → wildcard skipping (the input
  keeps the wildcard token and no factor is accumulated).

For each sample the accumulated product ``prod_i P(A_i in R_i | s_<i)``
is the selectivity estimate; the batch mean is returned.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import no_grad
from repro.ar.made import MADE
from repro.errors import ConfigError
from repro.runtime.plan import MADEPlan, Workspace, compile_made, softmax_inplace
from repro.utils.rng import ensure_rng


@dataclass
class SlotConstraint:
    """Constraint applied to one column during progressive sampling.

    Attributes
    ----------
    mass:
        (vocab,) or (batch, vocab) array in [0, 1]: the probability that a
        tuple carrying each token satisfies the range (1/0 for exact
        codecs, fractional for reduced domains).
    per_sample:
        Optional ``fn(sampled_tokens) -> (batch, vocab)`` producing masks
        that depend on already-sampled columns (factorized low digits).
        Multiplied with ``mass`` when both are present.
    scale:
        Optional ``fn(token_ids) -> (batch,)`` multiplicative per-sample
        weight applied after this column is sampled (fanout scaling).
    """

    mass: np.ndarray | None = None
    per_sample: Callable[[np.ndarray], np.ndarray] | None = None
    scale: Callable[[np.ndarray], np.ndarray] | None = None

    def resolve_mass(
        self, sampled_tokens: np.ndarray, vocab: int, dtype=np.float64
    ) -> np.ndarray | None:
        """Combine static and per-sample mass into (batch, vocab) or None.

        ``dtype`` is the sampler's working precision: float64 for the
        exact path, the plan dtype for reduced-precision plans. (It used
        to be hardwired to float64, silently upcasting float32 models.)

        A static 1-D ``mass`` with no ``per_sample`` hook resolves to the
        same broadcast view on every call, so that case is memoised per
        ``(dtype, batch)``. The cached result is a *view* over ``mass``
        (exactly what the uncached path returned), not a copy.
        """
        if self.per_sample is None:
            if self.mass is None:
                return None
            n = len(sampled_tokens)
            cached = getattr(self, "_resolved", None)
            if cached is not None and cached[0] == (np.dtype(dtype), n):
                return cached[1]
            mass = np.asarray(self.mass, dtype=dtype)
            if mass.ndim == 1:
                if mass.shape[0] != vocab:
                    raise ConfigError(
                        f"constraint mass has size {mass.shape[0]}, expected {vocab}"
                    )
                combined = np.broadcast_to(mass, (n, vocab))
            else:
                combined = mass
            self._resolved = ((np.dtype(dtype), n), combined)
            return combined
        combined = None
        if self.mass is not None:
            mass = np.asarray(self.mass, dtype=dtype)
            if mass.ndim == 1:
                if mass.shape[0] != vocab:
                    raise ConfigError(
                        f"constraint mass has size {mass.shape[0]}, expected {vocab}"
                    )
                combined = np.broadcast_to(mass, (len(sampled_tokens), vocab))
            else:
                combined = mass
        dynamic = np.asarray(self.per_sample(sampled_tokens), dtype=dtype)
        return dynamic if combined is None else combined * dynamic


class ProgressiveSampler:
    """Draws progressive samples from a MADE and aggregates selectivity.

    ``stratify_first=True`` replaces the i.i.d. categorical draws of each
    query's *first constrained column* with systematic (low-discrepancy)
    draws: all samples share one conditional distribution there, so a
    single uniform offset plus an even grid covers it proportionally.
    This is a classic variance-reduction device; the estimator stays
    unbiased because the marginal law of each draw is unchanged.

    Backends
    --------
    ``model`` may be a trained :class:`~repro.ar.made.MADE` or an already
    compiled :class:`~repro.runtime.plan.MADEPlan`. A MADE is compiled
    into a plan at construction (``use_plan=False`` opts out and runs the
    Module/autodiff path — kept for verification; both backends produce
    bitwise-identical weights). The plan is a snapshot of the weights:
    if the module trains further, build a new sampler.

    ``dtype`` selects the compiled plan's precision tier (forwarded to
    :func:`~repro.runtime.plan.compile_made`); the whole grouped
    sampling loop — masses, weights, conditionals — then runs in that
    dtype.  Per-query *uniform draws* stay float64 regardless: they come
    from the unchanged seeded generators, so the f32 tier consumes the
    exact doubles the f64 tier would, in the same order.
    """

    def __init__(
        self,
        model: MADE | MADEPlan,
        n_samples: int = 512,
        seed=None,
        stratify_first: bool = False,
        use_plan: bool = True,
        dtype=None,
    ):
        if n_samples < 1:
            raise ConfigError("n_samples must be >= 1")
        if isinstance(model, MADEPlan):
            if dtype is not None and np.dtype(dtype) != model.dtype:
                raise ConfigError(
                    f"sampler dtype {np.dtype(dtype)} conflicts with the "
                    f"precompiled plan's dtype {model.dtype}; recompile with "
                    "compile_made(made, dtype=...) instead"
                )
            self.model = None
            self.plan = model
        else:
            self.model = model
            self.plan = compile_made(model, dtype=dtype) if use_plan else None
            if self.plan is None and dtype is not None and (
                np.dtype(dtype) != np.dtype(np.float64)
            ):
                raise ConfigError(
                    "precision tiers require the compiled plan backend; "
                    "the Module path runs float64 only (use_plan=True)"
                )
        # The metadata surface (n_columns/vocab_sizes/ar_order/...) both
        # backends share; also what sample_weights dispatches on.
        self.spec = self.plan if self.plan is not None else self.model
        self.dtype = np.dtype(np.float64) if self.plan is None else self.plan.dtype
        self._workspace = Workspace()
        self._ar_order = list(self.spec.ar_order())  # fixed per model
        self.n_samples = n_samples
        self.stratify_first = stratify_first
        self._rng = ensure_rng(seed)
        # Grouping stats for the most recent sample_weights call: one
        # entry per signature group, holding the number of queries it
        # coalesced. Read by the serving layer (under the model lock,
        # like every other sampler access) to feed batch telemetry.
        self.last_groups: list[int] = []

    def batch_stats(self) -> dict:
        """Signature-grouping stats for the last :meth:`sample_weights`."""
        groups = self.last_groups
        return {
            "groups": len(groups),
            "queries": sum(groups),
            "largest_group": max(groups) if groups else 0,
        }

    # ------------------------------------------------------------------
    def estimate(self, constraints: Sequence[SlotConstraint | None]) -> float:
        """Selectivity estimate for one query (mean over samples)."""
        return float(self.estimate_batch([constraints])[0])

    def estimate_batch(
        self,
        queries: Sequence[Sequence[SlotConstraint | None]],
        clip_negative: bool = True,
        rngs: Sequence[np.random.Generator] | None = None,
    ) -> np.ndarray:
        """Vectorised estimation of several queries at once.

        All queries share the forward passes: the batch is
        ``n_queries * n_samples`` rows, constraints resolved per query.
        Returns (n_queries,) estimated selectivities. ``clip_negative``
        should stay on for selectivities; aggregate extensions (SUM over
        signed values via ``scale`` hooks) turn it off. ``rngs`` supplies
        one generator per query (see :meth:`sample_weights`).
        """
        per_query = self.sample_weights(queries, rngs=rngs)
        means = per_query.mean(axis=1)
        # maximum(x, 0.0) is value-identical to clip(x, 0.0, None)
        # (NaNs propagate through both) and much cheaper to dispatch.
        # In place into the fresh mean array: keeps the result at the
        # sampler dtype without a promotion-prone temporary.
        return np.maximum(means, 0.0, out=means) if clip_negative else means

    def estimate_with_error(
        self, constraints: Sequence[SlotConstraint | None]
    ) -> tuple[float, float]:
        """(estimate, standard error) for one query.

        The standard error of the per-sample weights quantifies the
        progressive-sampling Monte-Carlo uncertainty (it does NOT include
        model error); a 95% CI is roughly estimate ± 2·stderr.
        """
        weights = self.sample_weights([constraints])[0]
        estimate = float(np.clip(weights.mean(), 0.0, None))
        stderr = float(weights.std(ddof=1) / np.sqrt(len(weights))) if len(weights) > 1 else 0.0
        return estimate, stderr

    def sample_weights(
        self,
        queries: Sequence[Sequence[SlotConstraint | None]],
        rngs: Sequence[np.random.Generator] | None = None,
    ) -> np.ndarray:
        """(n_queries, n_samples) raw per-sample selectivity weights.

        ``rngs`` optionally supplies one independent generator per query.
        Each query's categorical draws then come from its own stream, so
        its weights depend only on (model, query, its generator) — NOT on
        the other queries sharing the forward passes. The serving layer
        relies on this to make batched results bitwise-equal to
        single-query runs (the AR forward pass is row-wise deterministic,
        and wildcard skipping keeps each query's rows independent).
        Without ``rngs`` the sampler's own stateful stream is used.

        Batches execute column-by-column across queries, not
        query-by-query: queries are grouped by *constrained-column
        signature* (the tuple of columns they constrain, in AR order)
        and each group runs one stacked ``(group * n_samples, hidden)``
        trunk program per AR step.  Within a group every constrained
        column is active for every row, so the driver works on pure
        views — no gather copies, no per-query forward passes.  Grouping
        does not change any query's draws: the forward pass is row-wise
        deterministic and each query consumes its own generator exactly
        as it would alone.
        """
        model = self.spec
        n_queries = len(queries)
        ns = self.n_samples
        if rngs is not None and len(rngs) != n_queries:
            raise ConfigError(
                f"expected {n_queries} per-query generators, got {len(rngs)}"
            )
        for constraints in queries:
            if len(constraints) != model.n_columns:
                raise ConfigError(
                    f"expected {model.n_columns} constraints per query, "
                    f"got {len(constraints)}"
                )

        # Group query indices by signature, preserving first-seen order
        # (deterministic for telemetry and for the shared-stream path).
        groups: dict[tuple[int, ...], list[int]] = {}
        ar_order = self._ar_order
        for qi, constraints in enumerate(queries):
            signature = tuple(
                [c for c in ar_order if constraints[c] is not None]
            )
            groups.setdefault(signature, []).append(qi)
        self.last_groups = [len(indices) for indices in groups.values()]

        # Workspace buffers are sized to the whole call so every group
        # shares one allocation regardless of its size.
        capacity = n_queries * ns
        out = np.empty((n_queries, ns), dtype=self.dtype)
        # The autodiff guard only matters on the Module backend; the plan
        # path is pure numpy and skips the (measurable) enter/exit cost.
        with no_grad() if self.plan is None else nullcontext():
            for signature, indices in groups.items():
                group_rngs = None if rngs is None else [rngs[qi] for qi in indices]
                out[indices] = self._sample_group(
                    signature,
                    [queries[qi] for qi in indices],
                    group_rngs,
                    capacity,
                )
        return out

    def _sample_group(
        self,
        columns: tuple[int, ...],
        queries: Sequence[Sequence[SlotConstraint | None]],
        rngs: Sequence[np.random.Generator] | None,
        capacity: int,
    ) -> np.ndarray:
        """Sample one signature group: every query constrains ``columns``.

        Returns ``(len(queries), n_samples)`` raw weights. All rows are
        active at every step (that is what the signature guarantees), so
        the whole group is one stacked forward pass per AR column.  While
        every draw so far has been deterministic (equality-style
        constraints resolve a one-hot mass), the context is a pure
        function of (weights, prefix) and the logits come from the
        plan's shared :class:`~repro.runtime.plan.PrefixCache` instead
        of the trunk.
        """
        model = self.spec
        g = len(queries)
        ns = self.n_samples
        n_rows = g * ns
        # `tokens` is internal scratch (never escapes this call) so it
        # lives in the workspace — a leading view of the capacity-sized
        # buffer, shared across groups; the result is a fresh array.
        tokens = self._workspace.get(
            "tokens", (capacity, model.n_columns), np.int64
        )[:n_rows]
        tokens[:] = model.wildcard_ids
        weights = np.ones(n_rows, dtype=self.dtype)
        first_column = True  # stratification applies to the first step only
        # Constrained-prefix tracking: while every draw so far has been
        # the same token for every row, the context is describable as a
        # (column, token) prefix and cacheable across queries.
        prefix: tuple = ()
        prefix_usable = self.plan is not None
        # Per-query streams only: all of a query's categorical uniforms
        # are drawn in ONE generator call at its first uniform step (the
        # generator fills a block with exactly the doubles the
        # per-column calls would consume, in the same order), so the
        # column loop does no per-query generator work. The shared
        # stream (rngs is None) cannot hoist: its consumption order
        # interleaves queries within each column.
        uniforms: np.ndarray | None = None
        u_index = 0

        for column in columns:
            vocab = model.vocab_sizes[column]

            # No wildcard mask: unsampled columns hold their wildcard
            # id in `tokens`, which is exactly what the mask would
            # substitute — both backends skip that work bitwise-free.
            # Both feed one in-place softmax, so the plan path is
            # bitwise-equal to the Module path by shared code.
            if self.plan is not None:
                if prefix_usable:
                    # Cached post-softmax conditional: read-only on a
                    # hit (only ever read below — every branch derives
                    # fresh arrays from `probs`).
                    probs = self.plan.forward_prefix_probs(
                        column,
                        prefix,
                        n_rows,
                        workspace=self._workspace,
                        capacity=capacity,
                    )
                else:
                    probs = softmax_inplace(
                        self.plan.forward_slice(
                            column,
                            tokens,
                            workspace=self._workspace,
                            capacity=capacity,
                        )
                    )
            else:
                probs = softmax_inplace(
                    self.model.column_logits(column, tokens).numpy()
                )

            # `mass` stays unmaterialised while no constraint resolves
            # one (all-ones mass would multiply away anyway), and a
            # single covering mass is used as-is — no template.
            resolved_at = []  # (row offset in the group block, mass)
            position = 0
            for constraints in queries:
                sub = tokens[position : position + ns]
                resolved = constraints[column].resolve_mass(
                    sub, vocab, dtype=self.dtype
                )
                if resolved is not None:
                    resolved_at.append((position, resolved))
                position += ns

            # Per Section 5.2: the range probability is the factor.
            # Rows whose constraint has no mass (e.g. fanout slots)
            # sample from the full conditional with factor 1.
            if not resolved_at:
                weighted = probs
                valid = probs.sum(axis=1)
            elif len(resolved_at) * ns == n_rows:  # every row carries mass
                if len(resolved_at) == 1:
                    weighted = probs * resolved_at[0][1]
                else:
                    # Per-query multiplies straight into the output:
                    # elementwise, so bitwise-equal to assembling the
                    # (n_rows, vocab) mass block and multiplying once,
                    # minus that block's allocation and fill pass.
                    weighted = np.empty((n_rows, vocab), dtype=self.dtype)
                    for offset, resolved in resolved_at:
                        rows = slice(offset, offset + ns)
                        np.multiply(probs[rows], resolved, out=weighted[rows])
                valid = weighted.sum(axis=1)
                weights *= valid
            else:
                # Mass-free rows keep their conditional untouched
                # (multiplying by an all-ones mass is exact), so start
                # from a copy and overwrite only the rows with mass.
                weighted = probs.copy()
                has_mass = np.zeros(n_rows, dtype=bool)
                for offset, resolved in resolved_at:
                    rows = slice(offset, offset + ns)
                    np.multiply(probs[rows], resolved, out=weighted[rows])
                    has_mass[rows] = True
                valid = weighted.sum(axis=1)
                weights[:] = np.where(has_mass, weights * valid, weights)

            # One min-reduce guards the (rare) dead-row path; the fast
            # path skips materialising the boolean mask entirely.
            if np.amin(valid) <= 0.0:
                dead = valid <= 0.0
                safe = np.where(dead, 1.0, valid)
                distribution = weighted / safe[:, None]
                distribution[dead] = probs[dead]  # arbitrary; weight is 0
            elif weighted is probs:
                distribution = weighted / valid[:, None]
            else:
                distribution = np.divide(weighted, valid[:, None], out=weighted)

            if self.stratify_first and first_column:
                draws = np.empty(n_rows, dtype=np.int64)
                position = 0
                for qi in range(g):
                    rng = self._rng if rngs is None else rngs[qi]
                    rows = slice(position, position + ns)
                    draws[rows] = _systematic_rows(distribution[rows], rng)
                    position += ns
            elif self.stratify_first or rngs is not None:
                # Per-query streams, group-level arithmetic: the cdf and
                # the comparison are row-wise ops, so computing them on
                # the stacked block is bitwise-identical to per-query
                # `_sample_rows` slices; only the uniforms must come
                # from each query's own generator, in query order.
                cdf = np.cumsum(distribution, axis=1)
                cdf[:, -1] = 1.0  # guard floating-point undershoot
                if rngs is not None:
                    if uniforms is None:
                        # Remaining uniform steps, this one included —
                        # the stratified first column (if any) consumed
                        # its systematic draws already, so each query's
                        # block starts exactly where its per-column
                        # stream would.
                        remaining = len(columns) - columns.index(column)
                        uniforms = self._workspace.get(
                            "uniforms",
                            (model.n_columns, capacity, 1),
                            np.float64,
                        )[:remaining, :n_rows]
                        position = 0
                        for qi in range(g):
                            uniforms[:, position : position + ns] = rngs[
                                qi
                            ].uniform(size=(remaining, ns, 1))
                            position += ns
                    u = uniforms[u_index]
                    u_index += 1
                else:
                    u = self._workspace.get(
                        "uniforms", (model.n_columns, capacity, 1), np.float64
                    )[0, :n_rows]
                    position = 0
                    for qi in range(g):
                        u[position : position + ns] = self._rng.uniform(
                            size=(ns, 1)
                        )
                        position += ns
                draws = (u > cdf).sum(axis=1, dtype=np.int64)
            else:
                draws = _sample_rows(distribution, self._rng)

            tokens[:, column] = draws
            first_column = False

            if prefix_usable and column != columns[-1]:
                # Extend the cacheable prefix only when the draw was the
                # same token on every row (verified on the actual draws,
                # so cached contexts are exact by construction). The
                # group's last column skips the check: the extended
                # prefix has no next step to consume it.
                token = int(draws[0])
                if (draws == token).all():
                    prefix = prefix + ((column, token),)
                else:
                    prefix_usable = False

            position = 0
            for constraints in queries:
                constraint = constraints[column]
                if constraint.scale is not None:
                    rows = slice(position, position + ns)
                    weights[rows] *= constraint.scale(draws[rows])
                position += ns

        return weights.reshape(g, ns)


def _sample_rows(distribution: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Vectorised categorical sampling: one draw per row."""
    cdf = np.cumsum(distribution, axis=1)
    cdf[:, -1] = 1.0  # guard floating-point undershoot
    u = rng.uniform(size=(len(distribution), 1))
    return (u > cdf).sum(axis=1, dtype=np.int64)


def _systematic_rows(distribution: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Systematic (stratified) draws: all rows share one distribution.

    One uniform offset + an even grid over [0, 1): each draw is still
    marginally distributed per the (shared) row distribution, but the
    batch covers it with minimal discrepancy. Rows are shuffled so
    downstream pairing carries no ordering artefacts.
    """
    n = len(distribution)
    cdf = np.cumsum(distribution[0])
    cdf[-1] = 1.0
    grid = (rng.uniform() + np.arange(n)) / n
    draws = np.searchsorted(cdf, grid, side="right").astype(np.int64)
    draws = np.minimum(draws, len(cdf) - 1)
    rng.shuffle(draws)
    return draws


def differentiable_estimate(
    model: MADE,
    constraints: Sequence[SlotConstraint | None],
    n_samples: int,
    rng: np.random.Generator,
):
    """Progressive-sampling selectivity as a differentiable Tensor.

    The estimator UAE (Wu & Cong, SIGMOD'21) trains the AR model *through*
    the sampler. Here the sampled token paths are treated as constants
    (drawn from the detached conditionals — the "frozen path" variant of
    UAE's Gumbel-softmax trick) while gradients flow through the range
    probability factors ``P(A_i in R_i | s_<i)``, which is where the
    query signal lives.

    Returns a scalar :class:`~repro.autodiff.tensor.Tensor` (requires
    grad when the model does).
    """
    from repro.autodiff.tensor import Tensor

    if len(constraints) != model.n_columns:
        raise ConfigError(
            f"expected {model.n_columns} constraints, got {len(constraints)}"
        )
    tokens = np.tile(model.wildcard_ids, (n_samples, 1))
    wildcard = np.ones((n_samples, model.n_columns), dtype=bool)
    factor_product: Tensor | None = None

    for column in model.ar_order():
        constraint = constraints[column]
        if constraint is None:
            continue
        vocab = model.vocab_sizes[column]
        logits = model.column_logits(column, tokens, wildcard_mask=wildcard)
        probs = ops.softmax(logits, axis=-1)  # graph retained
        mass = constraint.resolve_mass(tokens, vocab)
        if mass is None:
            mass = np.ones((n_samples, vocab))
        valid = (probs * Tensor(mass)).sum(axis=1)  # (n_samples,) Tensor
        factor_product = valid if factor_product is None else factor_product * valid

        weighted = probs.numpy() * mass
        row_sums = weighted.sum(axis=1)
        dead = row_sums <= 0
        safe = np.where(dead, 1.0, row_sums)
        distribution = weighted / safe[:, None]
        distribution[dead] = 1.0 / vocab
        draws = _sample_rows(distribution, rng)
        tokens[:, column] = draws
        wildcard[:, column] = False

    if factor_product is None:  # unconstrained query
        return Tensor(np.ones(1)).mean()
    return factor_product.mean()
