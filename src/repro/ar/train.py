"""Training loop for the AR model (cross-entropy, Equation 3).

Implements the paper's training recipe for the AR part of IAM and for
the Naru/Neurocard baseline:

- Adam on mini-batches of tokenised tuples;
- *wildcard skipping*: per sample, a uniformly-drawn subset of columns is
  replaced by the wildcard token at the input (targets unchanged), which
  teaches the model conditionals marginalised over unqueried columns;
- per-epoch callbacks so experiments can trace error-vs-epoch (Figure 6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.autodiff import ops
from repro.ar.made import MADE
from repro.errors import CompileError, ConfigError
from repro.nn.optim import Adam, clip_grad_norm
from repro.runtime.train import TrainStepExecutor
from repro.utils.rng import ensure_rng


@dataclass
class TrainConfig:
    """Hyper-parameters of the AR training loop."""

    epochs: int = 10
    batch_size: int = 512
    learning_rate: float = 5e-3
    grad_clip: float = 5.0
    wildcard_probability: float = 0.5  # chance a sample gets any wildcards
    seed: int | None = 0
    backend: str = "compiled"  # cached-tape executor; 'eager' is the oracle

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ConfigError("epochs and batch_size must be >= 1")
        if not 0.0 <= self.wildcard_probability <= 1.0:
            raise ConfigError("wildcard_probability must be in [0, 1]")
        if self.backend not in ("compiled", "eager"):
            raise ConfigError(f"unknown backend {self.backend!r}")


def initialize_output_bias(model: MADE, tokens: np.ndarray) -> None:
    """Set the output bias to per-column log marginal frequencies.

    The classic unigram-bias initialisation: rare tokens start with their
    observed log-probability instead of log(1/vocab), which otherwise
    takes hundreds of Adam steps to push down — exactly the regime IAM's
    K-token columns are in (a tail component may hold a handful of rows).
    Unseen tokens get a pseudo-count of 1/2.
    """
    tokens = np.asarray(tokens, dtype=np.int64)
    if model.output_layer.bias is None:  # pragma: no cover - bias always on
        return
    bias = model.output_layer.bias.data
    for k, s in enumerate(model._output_slices):
        counts = np.bincount(tokens[:, k], minlength=model.vocab_sizes[k]) + 0.5
        logp = np.log(counts / counts.sum())
        bias[s] = logp - logp.mean()


def draw_wildcard_mask(
    rng: np.random.Generator,
    batch_rows: int,
    n_columns: int,
    probability: float,
) -> np.ndarray:
    """Wildcard-skipping input mask (Naru-style).

    Each sample is selected with ``probability``; a selected sample masks
    a uniform-count (0..n-1), uniformly-chosen subset of columns.
    """
    use = rng.random(batch_rows) < probability
    counts = rng.integers(0, n_columns, size=batch_rows)
    scores = rng.random((batch_rows, n_columns))
    thresholds = np.sort(scores, axis=1)[np.arange(batch_rows), counts - 1]
    mask = scores <= thresholds[:, None]
    mask[counts == 0] = False
    mask[~use] = False
    return mask


class ARTrainer:
    """Trains a :class:`MADE` on a token matrix."""

    def __init__(self, model: MADE, config: TrainConfig | None = None):
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        self._rng = ensure_rng(self.config.seed)
        self.epoch_losses: list[float] = []
        self.step_seconds: list[float] = []
        self._executor: TrainStepExecutor | None = None
        if self.config.backend == "compiled":
            try:
                self._executor = TrainStepExecutor(model=model)
            except CompileError:
                self._executor = None  # unsupported structure: stay eager

    # ------------------------------------------------------------------
    def _batch_loss(self, batch: np.ndarray, wildcard: bool = True):
        mask = (
            draw_wildcard_mask(
                self._rng, len(batch), self.model.n_columns, self.config.wildcard_probability
            )
            if wildcard
            else None
        )
        log_like = self.model.log_likelihood(batch, wildcard_mask=mask)
        return -log_like.mean()

    # ------------------------------------------------------------------
    def train(
        self,
        tokens: np.ndarray,
        on_epoch_end: Callable[[int, float], None] | None = None,
    ) -> list[float]:
        """Run the configured number of epochs; returns per-epoch losses."""
        tokens = np.asarray(tokens, dtype=np.int64)
        initialize_output_bias(self.model, tokens)
        n = len(tokens)
        for epoch in range(self.config.epochs):
            order = self._rng.permutation(n)
            total, seen = 0.0, 0
            for start in range(0, n, self.config.batch_size):
                batch = tokens[order[start : start + self.config.batch_size]]
                began = time.perf_counter()
                if self._executor is not None:
                    mask = draw_wildcard_mask(
                        self._rng, len(batch), self.model.n_columns,
                        self.config.wildcard_probability,
                    )
                    loss_value = self._executor.loss_and_grads(
                        tokens=batch, wildcard_mask=mask, train_ar=True
                    )
                else:
                    loss = self._batch_loss(batch)
                    self.optimizer.zero_grad()
                    loss.backward()
                    loss_value = loss.item()
                clip_grad_norm(self.model.parameters(), self.config.grad_clip)
                self.optimizer.step()
                self.step_seconds.append(time.perf_counter() - began)
                # Weight by row count so the final partial batch does not
                # skew the epoch mean.
                total += loss_value * len(batch)
                seen += len(batch)
            epoch_loss = total / max(seen, 1)
            self.epoch_losses.append(epoch_loss)
            if on_epoch_end is not None:
                on_epoch_end(epoch, epoch_loss)
        return self.epoch_losses

    # ------------------------------------------------------------------
    def evaluate_nll(self, tokens: np.ndarray, batch_size: int = 4096) -> float:
        """Mean negative log-likelihood (nats/tuple) without wildcards."""
        from repro.autodiff.tensor import no_grad

        tokens = np.asarray(tokens, dtype=np.int64)
        total, count = 0.0, 0
        with no_grad():
            for start in range(0, len(tokens), batch_size):
                batch = tokens[start : start + batch_size]
                ll = self.model.log_likelihood(batch)
                total += float(-ll.numpy().sum())
                count += len(batch)
        return total / max(count, 1)
