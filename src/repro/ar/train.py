"""Training loop for the AR model (cross-entropy, Equation 3).

Implements the paper's training recipe for the AR part of IAM and for
the Naru/Neurocard baseline:

- Adam on mini-batches of tokenised tuples;
- *wildcard skipping*: per sample, a uniformly-drawn subset of columns is
  replaced by the wildcard token at the input (targets unchanged), which
  teaches the model conditionals marginalised over unqueried columns;
- per-epoch callbacks so experiments can trace error-vs-epoch (Figure 6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.autodiff import ops
from repro.ar.made import MADE
from repro.errors import CompileError, ConfigError, ParallelTrainError
from repro.nn.optim import Adam, clip_grad_norm
from repro.runtime.parallel import ParallelTrainEngine
from repro.runtime.train import TrainStepExecutor
from repro.utils.rng import ensure_rng


@dataclass
class TrainConfig:
    """Hyper-parameters of the AR training loop."""

    epochs: int = 10
    batch_size: int = 512
    learning_rate: float = 5e-3
    grad_clip: float = 5.0
    wildcard_probability: float = 0.5  # chance a sample gets any wildcards
    seed: int | None = 0
    backend: str = "compiled"  # cached-tape executor; 'eager' is the oracle
    # 0 = sequential; W >= 1 shards each batch across W gradient workers
    # (repro.runtime.parallel). W=1 is bitwise-identical to sequential
    # compiled; worker crashes fall back without losing the step.
    n_workers: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ConfigError("epochs and batch_size must be >= 1")
        if not 0.0 <= self.wildcard_probability <= 1.0:
            raise ConfigError("wildcard_probability must be in [0, 1]")
        if self.backend not in ("compiled", "eager"):
            raise ConfigError(f"unknown backend {self.backend!r}")
        if self.n_workers < 0:
            raise ConfigError(f"n_workers must be >= 0, got {self.n_workers}")


def initialize_output_bias(
    model: MADE,
    tokens: np.ndarray | None = None,
    *,
    counts: list[np.ndarray] | None = None,
) -> None:
    """Set the output bias to per-column log marginal frequencies.

    The classic unigram-bias initialisation: rare tokens start with their
    observed log-probability instead of log(1/vocab), which otherwise
    takes hundreds of Adam steps to push down — exactly the regime IAM's
    K-token columns are in (a tail component may hold a handful of rows).
    Unseen tokens get a pseudo-count of 1/2.

    Callers pass either the (N, n_columns) token matrix or precomputed
    per-column integer ``counts`` (one array of length ``vocab_sizes[k]``
    per column). The counts form lets large tables accumulate bincounts
    chunk by chunk — integer sums, so the result is bitwise-identical to
    the one-shot pass — without materialising the full token matrix.
    """
    if model.output_layer.bias is None:  # pragma: no cover - bias always on
        return
    if counts is None:
        tokens = np.asarray(tokens, dtype=np.int64)
        counts = [
            np.bincount(tokens[:, k], minlength=model.vocab_sizes[k])
            for k in range(len(model.vocab_sizes))
        ]
    bias = model.output_layer.bias.data
    for k, s in enumerate(model._output_slices):
        smoothed = counts[k] + 0.5
        logp = np.log(smoothed / smoothed.sum())
        bias[s] = logp - logp.mean()


def draw_wildcard_mask(
    rng: np.random.Generator,
    batch_rows: int,
    n_columns: int,
    probability: float,
) -> np.ndarray:
    """Wildcard-skipping input mask (Naru-style).

    Each sample is selected with ``probability``; a selected sample masks
    a uniform-count (0..n-1), uniformly-chosen subset of columns.
    """
    use = rng.random(batch_rows) < probability
    counts = rng.integers(0, n_columns, size=batch_rows)
    scores = rng.random((batch_rows, n_columns))
    thresholds = np.sort(scores, axis=1)[np.arange(batch_rows), counts - 1]
    mask = scores <= thresholds[:, None]
    mask[counts == 0] = False
    mask[~use] = False
    return mask


class ARTrainer:
    """Trains a :class:`MADE` on a token matrix."""

    def __init__(self, model: MADE, config: TrainConfig | None = None):
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        self._rng = ensure_rng(self.config.seed)
        self.epoch_losses: list[float] = []
        self.step_seconds: list[float] = []
        self.epoch_seconds: list[float] = []
        self.parallel_steps = 0
        self.parallel_fallbacks = 0
        # Modeled per-row data stall (us) for benchmarking; see
        # JointTrainer.row_stall_us. 0.0 disables it.
        self.row_stall_us = 0.0
        self._parallel: ParallelTrainEngine | None = None
        self._executor: TrainStepExecutor | None = None
        if self.config.backend == "compiled":
            try:
                self._executor = TrainStepExecutor(model=model)
            except CompileError:
                self._executor = None  # unsupported structure: stay eager

    # ------------------------------------------------------------------
    def _batch_loss(self, batch: np.ndarray, wildcard: bool = True):
        mask = (
            draw_wildcard_mask(
                self._rng, len(batch), self.model.n_columns, self.config.wildcard_probability
            )
            if wildcard
            else None
        )
        log_like = self.model.log_likelihood(batch, wildcard_mask=mask)
        return -log_like.mean()

    # ------------------------------------------------------------------
    def _maybe_start_parallel(self, tokens: np.ndarray) -> None:
        """Spawn the data-parallel engine when configured and possible."""
        if self.config.n_workers < 1 or self._executor is None or len(tokens) == 0:
            return
        engine = ParallelTrainEngine(
            model=self.model,
            gmm_modules={},
            raw_columns={},
            static_tokens=tokens,
            n_workers=self.config.n_workers,
            row_stall_us=self.row_stall_us,
        )
        try:
            engine.start()
        except ParallelTrainError:
            engine.close()
            self.parallel_fallbacks += 1
            return
        self._parallel = engine

    def _step(self, tokens: np.ndarray, rows: np.ndarray) -> float | None:
        """One mini-batch step on whichever backend is active.

        All backends draw the wildcard mask at the same point in the RNG
        stream; the parallel engine only touches parameters after a
        successful reduction, so a worker crash falls back to the local
        executor with the same mask — the step is replayed, not lost.
        """
        if self.row_stall_us and self._parallel is None:
            time.sleep(len(rows) * self.row_stall_us * 1e-6)
        if self._parallel is not None:
            mask = draw_wildcard_mask(
                self._rng, len(rows), self.model.n_columns, self.config.wildcard_probability
            )
            try:
                loss_value = self._parallel.step(
                    rows, wildcard_mask=mask, train_gmms=False, train_ar=True
                )
            except ParallelTrainError:
                self._parallel.close()
                self._parallel = None
                self.parallel_fallbacks += 1
                loss_value = self._executor.loss_and_grads(
                    tokens=tokens[rows], wildcard_mask=mask, train_ar=True
                )
            else:
                self.parallel_steps += 1
        elif self._executor is not None:
            mask = draw_wildcard_mask(
                self._rng, len(rows), self.model.n_columns, self.config.wildcard_probability
            )
            loss_value = self._executor.loss_and_grads(
                tokens=tokens[rows], wildcard_mask=mask, train_ar=True
            )
        else:
            loss = self._batch_loss(tokens[rows])
            self.optimizer.zero_grad()
            loss.backward()
            loss_value = loss.item()
        clip_grad_norm(self.model.parameters(), self.config.grad_clip)
        self.optimizer.step()
        return loss_value

    def train(
        self,
        tokens: np.ndarray,
        on_epoch_end: Callable[[int, float], None] | None = None,
    ) -> list[float]:
        """Run the configured number of epochs; returns per-epoch losses."""
        tokens = np.asarray(tokens, dtype=np.int64)
        initialize_output_bias(self.model, tokens)
        self._maybe_start_parallel(tokens)
        n = len(tokens)
        try:
            for epoch in range(self.config.epochs):
                order = self._rng.permutation(n)
                total, seen = 0.0, 0
                epoch_began = time.perf_counter()
                for start in range(0, n, self.config.batch_size):
                    rows = order[start : start + self.config.batch_size]
                    began = time.perf_counter()
                    loss_value = self._step(tokens, rows)
                    if loss_value is None:
                        continue
                    self.step_seconds.append(time.perf_counter() - began)
                    # Weight by row count so the final partial batch does
                    # not skew the epoch mean.
                    total += loss_value * len(rows)
                    seen += len(rows)
                self.epoch_seconds.append(time.perf_counter() - epoch_began)
                if seen == 0:
                    # No batch produced a loss: appending a 0.0 "epoch
                    # loss" would poison the curve, so skip it and the
                    # callback entirely.
                    continue
                epoch_loss = total / seen
                self.epoch_losses.append(epoch_loss)
                if on_epoch_end is not None:
                    on_epoch_end(epoch, epoch_loss)
        finally:
            if self._parallel is not None:
                self._parallel.close()
                self._parallel = None
        return self.epoch_losses

    # ------------------------------------------------------------------
    def timing_summary(self) -> dict:
        """Wall-clock accounting for the run (bench reports read this)."""
        steps = len(self.step_seconds)
        busy = sum(self.step_seconds)
        return {
            "n_steps": steps,
            "parallel_steps": self.parallel_steps,
            "steps_per_sec": steps / busy if busy > 0 else 0.0,
            "p50_step_ms": float(np.median(self.step_seconds)) * 1e3 if steps else 0.0,
            "epoch_seconds": list(self.epoch_seconds),
            "n_workers": self.config.n_workers,
            "parallel_fallbacks": self.parallel_fallbacks,
        }

    # ------------------------------------------------------------------
    def evaluate_nll(self, tokens: np.ndarray, batch_size: int = 4096) -> float:
        """Mean negative log-likelihood (nats/tuple) without wildcards."""
        from repro.autodiff.tensor import no_grad

        tokens = np.asarray(tokens, dtype=np.int64)
        total, count = 0.0, 0
        with no_grad():
            for start in range(0, len(tokens), batch_size):
                batch = tokens[start : start + batch_size]
                ll = self.model.log_likelihood(batch)
                total += float(-ll.numpy().sum())
                count += len(batch)
        return total / max(count, 1)
