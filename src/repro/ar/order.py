"""Autoregressive column orders.

``order[k]`` is the *AR position* of column k: the column is conditioned
on every column with a smaller position. The paper (Section 4.3, "Column
Order") finds the natural left-to-right order effective, matching Naru;
alternatives exist for the ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import ensure_rng


def validate_order(order: np.ndarray, n_columns: int) -> np.ndarray:
    """Check that ``order`` is a permutation of 0..n_columns-1."""
    order = np.asarray(order, dtype=np.int64)
    if sorted(order.tolist()) != list(range(n_columns)):
        raise ConfigError(f"order {order.tolist()} is not a permutation of 0..{n_columns - 1}")
    return order


def identity_order(n_columns: int) -> np.ndarray:
    """The paper's default: natural left-to-right order."""
    return np.arange(n_columns, dtype=np.int64)


def random_order(n_columns: int, seed=None) -> np.ndarray:
    """A uniformly random order (column-order ablation)."""
    rng = ensure_rng(seed)
    return rng.permutation(n_columns).astype(np.int64)


def heuristic_order(vocab_sizes: list[int]) -> np.ndarray:
    """Smallest-domain-first: cheap early conditionals, large heads late.

    A common heuristic in the Naru codebase; included for the ablation.
    Returns positions, i.e. ``order[k]`` = position of column k.
    """
    by_size = np.argsort(np.asarray(vocab_sizes), kind="stable")
    positions = np.empty(len(vocab_sizes), dtype=np.int64)
    positions[by_size] = np.arange(len(vocab_sizes))
    return positions
