"""Gradient-boosted regression trees, from scratch.

The substrate behind the Model_QE baseline (Dutt et al., "Efficiently
approximating selectivity functions using low overhead regression
models"): the original uses XGBoost/LightGBM; this is a compact,
dependency-free reimplementation sufficient for the paper's usage —
regressing (log) selectivities on query-range features.
"""

from repro.trees.regression_tree import RegressionTree
from repro.trees.gbdt import GradientBoostedRegressor

__all__ = ["RegressionTree", "GradientBoostedRegressor"]
