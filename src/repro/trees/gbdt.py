"""Gradient boosting with squared loss over regression trees."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, NotFittedError
from repro.trees.regression_tree import RegressionTree
from repro.utils.rng import ensure_rng


class GradientBoostedRegressor:
    """Classic L2 boosting: each tree fits the current residuals."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        seed=None,
    ):
        if n_estimators < 1:
            raise ConfigError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ConfigError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self._rng = ensure_rng(seed)
        self.base_: float | None = None
        self.trees_: list[RegressionTree] = []
        self.train_errors_: list[float] = []

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostedRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self.base_ = float(y.mean())
        self.trees_ = []
        self.train_errors_ = []
        prediction = np.full(len(y), self.base_)
        n = len(y)
        for _ in range(self.n_estimators):
            residual = y - prediction
            if self.subsample < 1.0:
                rows = self._rng.choice(n, size=max(int(self.subsample * n), 2), replace=False)
            else:
                rows = slice(None)
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            ).fit(x[rows], residual[rows])
            self.trees_.append(tree)
            prediction = prediction + self.learning_rate * tree.predict(x)
            self.train_errors_.append(float(((y - prediction) ** 2).mean()))
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.base_ is None:
            raise NotFittedError("GradientBoostedRegressor used before fit()")
        x = np.asarray(x, dtype=np.float64)
        out = np.full(len(x), self.base_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(x)
        return out

    def size_bytes(self) -> int:
        """Rough storage: 4 values per internal node + 1 per leaf."""
        if self.base_ is None:
            raise NotFittedError("GradientBoostedRegressor used before fit()")
        total = 1
        for tree in self.trees_:
            leaves = tree.n_leaves()
            total += leaves + 4 * max(leaves - 1, 0)
        return total * 4
