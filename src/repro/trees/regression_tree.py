"""A CART-style regression tree with variance-reduction splits."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, NotFittedError


@dataclass
class _Node:
    """Internal: either a split (feature, threshold, children) or a leaf."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split(x: np.ndarray, y: np.ndarray, min_leaf: int) -> tuple[int, float, float]:
    """(feature, threshold, sse_gain) of the best split, gain 0 if none.

    For each feature: sort once, then prefix sums give every split's SSE
    in O(n) (the classic exact greedy of CART/XGBoost).
    """
    n, d = x.shape
    total_sum = y.sum()
    total_sq = (y**2).sum()
    base_sse = total_sq - total_sum**2 / n
    best = (-1, 0.0, 0.0)
    for feature in range(d):
        order = np.argsort(x[:, feature], kind="stable")
        xs = x[order, feature]
        ys = y[order]
        csum = np.cumsum(ys)
        csq = np.cumsum(ys**2)
        # Candidate split after position i (1-based left size).
        sizes = np.arange(1, n)
        left_sse = csq[:-1] - csum[:-1] ** 2 / sizes
        right_sum = total_sum - csum[:-1]
        right_sq = total_sq - csq[:-1]
        right_sizes = n - sizes
        right_sse = right_sq - right_sum**2 / right_sizes
        gain = base_sse - (left_sse + right_sse)
        # Valid splits: both sides >= min_leaf and x strictly increases.
        valid = (sizes >= min_leaf) & (right_sizes >= min_leaf) & (xs[:-1] < xs[1:])
        if not valid.any():
            continue
        gain = np.where(valid, gain, -np.inf)
        i = int(np.argmax(gain))
        if gain[i] > best[2]:
            threshold = (xs[i] + xs[i + 1]) / 2.0
            best = (feature, float(threshold), float(gain[i]))
    return best


class RegressionTree:
    """Binary regression tree minimising squared error."""

    def __init__(self, max_depth: int = 5, min_samples_leaf: int = 5):
        if max_depth < 1 or min_samples_leaf < 1:
            raise ConfigError("max_depth and min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: _Node | None = None
        self.n_features_: int | None = None

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or len(x) != len(y):
            raise ConfigError("x must be (n, d) with matching y")
        self.n_features_ = x.shape[1]
        self._root = self._grow(x, y, depth=0)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        feature, threshold, gain = _best_split(x, y, self.min_samples_leaf)
        if feature < 0 or gain <= 1e-12:
            return node
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise NotFittedError("RegressionTree used before fit()")
        x = np.asarray(x, dtype=np.float64)
        out = np.empty(len(x))
        # Iterative routing: vectorised per-level would be nicer, but the
        # trees here are shallow (depth <= 8) so a per-row walk is fine.
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def n_leaves(self) -> int:
        if self._root is None:
            raise NotFittedError("RegressionTree used before fit()")

        def count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return count(node.left) + count(node.right)

        return count(self._root)
