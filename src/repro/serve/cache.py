"""LRU + TTL result cache for served estimates.

Keys are ``(model_name, model_version, Query.cache_key())`` tuples built
by the service; values are whatever the service stores (selectivities).
The cache is thread-safe, counts hits/misses/evictions/expirations, and
takes an injectable monotonic clock so TTL behaviour is testable without
sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.errors import ConfigError

_MISSING = object()


@dataclass
class CacheStats:
    """Monotonic counters; ``entries`` is the current fill level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    entries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "entries": self.entries,
            "hit_rate": round(self.hit_rate, 4),
        }


class QueryCache:
    """Bounded LRU map with optional per-entry time-to-live.

    ``ttl_seconds=None`` disables expiry; ``max_entries`` bounds memory
    (least-recently-*used* entry is evicted). A TTL'd entry expires
    relative to when it was *stored* — a popular stale entry still drops
    out, which is what model hot-reload semantics want.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_entries < 1:
            raise ConfigError("cache max_entries must be >= 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ConfigError("cache ttl_seconds must be positive (or None)")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[Hashable, tuple[object, float]] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default=None):
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self._misses += 1
                return default
            value, stored_at = entry
            if self.ttl_seconds is not None and self._clock() - stored_at > self.ttl_seconds:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            elif len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = (value, self._clock())

    def invalidate(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every key matching ``predicate``; returns the count."""
        with self._lock:
            doomed = [k for k in self._entries if predicate(k)]
            for k in doomed:
                del self._entries[k]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                entries=len(self._entries),
            )
