"""JSON-over-HTTP front end for :class:`EstimationService`.

Endpoints (see docs/serving.md for the full protocol):

- ``POST /estimate`` — body ``{"model": name, "predicates": [[col, op,
  value], ...]}`` → the :class:`EstimateResult` as JSON.
- ``GET /healthz`` — liveness + registered model count.
- ``GET /models`` — per-model metadata (rows, version, batcher stats).
- ``GET /metrics`` — cache/telemetry snapshot (latency percentiles).

Built on the stdlib ``ThreadingHTTPServer``: one thread per connection,
which is exactly what feeds the micro-batcher concurrent requests to
coalesce.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import OverloadError, QueryError, ServeError, UnknownModelError
from repro.query.query import Query
from repro.serve.service import EstimationService

_MAX_BODY_BYTES = 1 << 20  # estimates are tiny; anything bigger is abuse


def parse_estimate_request(payload: dict) -> tuple[str, Query]:
    """Validate a /estimate body into (model name, Query)."""
    if not isinstance(payload, dict):
        raise QueryError("request body must be a JSON object")
    model = payload.get("model")
    if not isinstance(model, str) or not model:
        raise QueryError("'model' must be a non-empty string")
    predicates = payload.get("predicates")
    if not isinstance(predicates, list) or not predicates:
        raise QueryError("'predicates' must be a non-empty list of [column, op, value]")
    pairs = []
    for item in predicates:
        if not isinstance(item, (list, tuple)) or len(item) != 3:
            raise QueryError(f"malformed predicate {item!r}; expected [column, op, value]")
        column, op, value = item
        if not isinstance(column, str):
            raise QueryError(f"predicate column must be a string, got {column!r}")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise QueryError(f"predicate value must be a number, got {value!r}")
        pairs.append((column, op, float(value)))
    try:
        return model, Query.from_pairs(pairs)
    except ValueError as exc:  # unknown operator string
        raise QueryError(str(exc)) from exc


class ServeHandler(BaseHTTPRequestHandler):
    """Request handler bound to one service via :func:`make_server`."""

    service: EstimationService  # injected by make_server
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._send(200, {"status": "ok", "models": len(self.service.model_names())})
        elif self.path == "/models":
            self._send(200, {"models": self.service.models()})
        elif self.path == "/metrics":
            self._send(200, self.service.metrics())
        else:
            self._send(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/estimate":
            self._send(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length <= 0 or length > _MAX_BODY_BYTES:
            self._send(400, {"error": "missing or oversized request body"})
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
            model, query = parse_estimate_request(payload)
        except (QueryError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send(400, {"error": str(exc)})
            return
        try:
            result = self.service.estimate(model, query)
        except UnknownModelError as exc:
            self._send(404, {"error": str(exc)})
            return
        except (QueryError, KeyError) as exc:
            # e.g. predicates referencing columns the table lacks
            self._send(400, {"error": str(exc)})
            return
        except OverloadError as exc:
            # admission control shed the request (no fallback registered)
            self._send(429, {"error": str(exc)})
            return
        except ServeError as exc:
            self._send(503, {"error": str(exc)})
            return
        self._send(200, result.as_dict())

    # ------------------------------------------------------------------
    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route access logs into telemetry instead of stderr noise."""
        self.service.telemetry.increment("http.requests")


def make_server(
    service: EstimationService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server to ``service`` (port 0 = ephemeral)."""
    handler = type("BoundServeHandler", (ServeHandler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def start_in_background(server: ThreadingHTTPServer) -> threading.Thread:
    """Run ``serve_forever`` on a daemon thread (tests, selftest)."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    return thread
