"""Picklable helpers for cluster smoke tests and selftests.

Worker processes are spawned, and ``python -m repro.serve`` runs as a
``*.__main__`` module that CPython's spawn bootstrap deliberately does
not re-import in children — so any estimator wrapper that must cross
the pipe has to live in a plainly importable module like this one.
"""

from __future__ import annotations

import time


class SlowEstimator:
    """Delegate to a fitted estimator, adding fixed latency per call.

    Used to exercise the timeout-degrade and load-shedding paths: the
    delay is long enough for a deadline to expire (or a queue to fill)
    while the wrapped estimator still produces the deterministic
    reference answer whenever it is allowed to finish.
    """

    def __init__(self, inner, delay_seconds: float):
        self._inner = inner
        self._delay = delay_seconds
        self.name = f"slow-{getattr(inner, 'name', 'estimator')}"

    @property
    def table(self):
        return self._inner.table

    def runtime_plan(self):
        return self._inner.runtime_plan()

    def estimate(self, query):
        time.sleep(self._delay)
        return self._inner.estimate(query)

    def estimate_batch(self, queries, rngs=None):
        time.sleep(self._delay)
        return self._inner.estimate_batch(queries, rngs=rngs)
