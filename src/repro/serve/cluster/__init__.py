"""repro.serve.cluster — multi-process sharded serving.

Publishes each compiled :class:`~repro.runtime.plan.MADEPlan` exactly
once into a named shared-memory segment (:mod:`.shm`) and fans requests
out to a supervised pool of worker processes that map the arrays
zero-copy (:mod:`.pool`).  The public entry point is
:class:`ClusterService`, which duck-types
:class:`~repro.serve.service.EstimationService` so the HTTP front end
and CLI work unchanged; ``python -m repro.serve --workers N`` turns it
on.  See docs/serving.md ("Scaling out") for the architecture.
"""

from repro.serve.cluster.shm import (
    PlanAttachment,
    PlanPickler,
    PlanSegment,
    PlanUnpickler,
    attach_plan,
    dump_for_worker,
    leaked_segments,
    load_in_worker,
    publish_plan,
)
from repro.serve.cluster.pool import (
    ClusterConfig,
    ClusterService,
    WorkerHandle,
    WorkerPool,
)

__all__ = [
    "ClusterConfig",
    "ClusterService",
    "PlanAttachment",
    "PlanPickler",
    "PlanSegment",
    "PlanUnpickler",
    "WorkerHandle",
    "WorkerPool",
    "attach_plan",
    "dump_for_worker",
    "leaked_segments",
    "load_in_worker",
    "publish_plan",
]
