"""Zero-copy publication of compiled MADEPlans over shared memory.

A :class:`~repro.runtime.plan.MADEPlan` is immutable, read-only, and
content-fingerprinted — exactly the shape of data worth mapping once and
sharing across a pool of worker processes instead of pickling a copy
into each.  This module owns the wire format:

- :func:`publish_plan` lays the plan's complete array set (via
  ``MADEPlan.to_buffers()``) into ONE named
  ``multiprocessing.shared_memory`` segment: an 8-byte magic, a JSON
  header (fingerprint, per-array dtype/shape/offset), then the raw array
  bytes, each 64-byte aligned.  The returned :class:`PlanSegment` is
  refcounted; :meth:`PlanSegment.release` of the last reference unlinks
  the segment from ``/dev/shm``.
- :func:`attach_plan` maps a segment by name in a worker and rebuilds
  the plan through ``MADEPlan.from_buffers()`` with ndarray views
  straight into the mapping — zero copy, fingerprint-verified, frozen
  read-only.
- :class:`PlanPickler` / :class:`PlanUnpickler` pickle an estimator for
  shipment to a worker while externalizing every embedded plan to its
  fingerprint (``persistent_id``) and replacing scratch
  :class:`~repro.runtime.plan.Workspace` objects with fresh empty ones —
  the worker resolves fingerprints against its attached segments, so the
  heavy arrays never transit the pipe.

Lifetime contract: the parent that publishes a segment owns its unlink
(refcounted, here); workers only ever ``close`` their mappings.  POSIX
keeps the memory alive until the last mapping closes, so a parent-side
unlink never pulls pages out from under a worker still holding views.
"""

from __future__ import annotations

import io
import itertools
import json
import os
import pickle
import threading
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import ConfigError, ServeError
from repro.runtime.plan import MADEPlan, Workspace

__all__ = [
    "PlanSegment",
    "PlanAttachment",
    "PlanPickler",
    "PlanUnpickler",
    "attach_plan",
    "dump_for_worker",
    "leaked_segments",
    "load_in_worker",
    "publish_plan",
    "segment_name",
]

_MAGIC = b"IAMPLAN1"
_ALIGN = 64  # cache-line alignment for every array start
_PREFIX = "repro-plan"

# Process-global generation counter: several services (or several reload
# generations of one) may publish the same fingerprint from one PID.
_NONCES = itertools.count(1)


def segment_name(fingerprint: str, nonce: int) -> str:
    """The /dev/shm-visible name for one published plan generation.

    The publisher PID keeps independent services (and the debris of a
    crashed earlier run) from colliding on the same fingerprint.
    """
    return f"{_PREFIX}-{fingerprint}-{os.getpid():x}-{nonce:x}"


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def leaked_segments() -> list[str]:
    """Plan segments still linked in /dev/shm — the benchmark/test leak gate.

    Empty on platforms without a visible shm filesystem, in which case
    the gate degrades to the in-process ``PlanSegment.released`` checks.
    """
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(name for name in names if name.startswith(_PREFIX))


_attach_lock = threading.Lock()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment WITHOUT registering it for cleanup.

    Python 3.8–3.12 register every ``SharedMemory`` with the resource
    tracker even when merely attaching (bpo-39959), so a worker exit
    would unlink a segment the parent still serves from — and workers
    share one tracker process, whose bookkeeping is a set, so sending
    compensating ``unregister`` messages from several workers crashes
    it.  Instead, suppress the registration call for the duration of
    the attach; the publishing parent owns the unlink.
    """
    with _attach_lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    return segment


class PlanSegment:
    """A published plan: parent-side handle with refcounted unlink.

    Created holding one reference (the publisher's).  :meth:`retain`
    for every additional owner (e.g. a routing-table generation),
    :meth:`release` when done — the release that drops the count to
    zero closes the mapping and unlinks the name.  Both are idempotent
    past zero; ``released`` tells tests nothing leaked.
    """

    def __init__(self, name: str, fingerprint: str, nbytes: int,
                 segment: shared_memory.SharedMemory):
        self.name = name
        self.fingerprint = fingerprint
        self.nbytes = nbytes
        self._segment = segment
        self._lock = threading.Lock()
        self._refs = 1
        self._unlinked = False

    def retain(self) -> "PlanSegment":
        with self._lock:
            if self._unlinked:
                raise ServeError(f"plan segment {self.name} already unlinked")
            self._refs += 1
        return self

    def release(self) -> bool:
        """Drop one reference; True when this call unlinked the segment."""
        with self._lock:
            if self._unlinked:
                return False
            self._refs -= 1
            if self._refs > 0:
                return False
            self._unlinked = True
        self._segment.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        return True

    @property
    def released(self) -> bool:
        with self._lock:
            return self._unlinked

    @property
    def refcount(self) -> int:
        with self._lock:
            return self._refs

    def describe(self) -> dict:
        with self._lock:
            refs, unlinked = self._refs, self._unlinked
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "nbytes": self.nbytes,
            "refcount": refs,
            "unlinked": unlinked,
        }


def publish_plan(plan: MADEPlan, nonce: int | None = None) -> PlanSegment:
    """Copy ``plan``'s arrays into a fresh named segment, exactly once.

    The segment layout is self-describing: workers need only the name.
    Returns the refcounted parent-side handle.
    """
    if nonce is None:
        nonce = next(_NONCES)
    meta, arrays = plan.to_buffers()
    entries = []
    offset = 0
    for name, array in arrays.items():
        if not array.flags.c_contiguous:  # pragma: no cover - plans are C-order
            raise ConfigError(f"plan array {name!r} is not contiguous")
        offset = _align(offset)
        entries.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
            }
        )
        offset += array.nbytes
    header = json.dumps({"meta": meta, "arrays": entries}).encode("utf-8")
    data_start = _align(len(_MAGIC) + 8 + len(header))
    total = data_start + offset

    segment = shared_memory.SharedMemory(
        create=True, size=total, name=segment_name(plan.fingerprint, nonce)
    )
    buf = segment.buf
    buf[: len(_MAGIC)] = _MAGIC
    buf[len(_MAGIC) : len(_MAGIC) + 8] = len(header).to_bytes(8, "little")
    buf[len(_MAGIC) + 8 : len(_MAGIC) + 8 + len(header)] = header
    for entry, array in zip(entries, arrays.values()):
        start = data_start + entry["offset"]
        buf[start : start + array.nbytes] = array.tobytes()
    return PlanSegment(segment.name, plan.fingerprint, total, segment)


class PlanAttachment:
    """A worker-side mapping: the zero-copy plan plus its segment.

    ``close`` unmaps once every ndarray view has been dropped; numpy
    keeps the buffer exported while views live, in which case ``close``
    reports False and may be retried (e.g. after the old estimator is
    garbage-collected post-reload).  Workers never unlink.
    """

    def __init__(self, name: str, plan: MADEPlan,
                 segment: shared_memory.SharedMemory):
        self.name = name
        self.plan = plan
        self.fingerprint = plan.fingerprint
        self._segment = segment
        self._closed = False

    def close(self) -> bool:
        if self._closed:
            return True
        self.plan = None  # drop our own reference to the views
        try:
            self._segment.close()
        except BufferError:
            return False  # live views remain; caller retries later
        self._closed = True
        return True


def attach_plan(name: str, verify: bool = True) -> PlanAttachment:
    """Map a published segment and rebuild its plan, zero-copy.

    Every ndarray the returned plan holds is a read-only view into the
    shared mapping; ``verify`` re-hashes the bytes against the header
    fingerprint (cheap relative to a worker's lifetime, and the only
    defense against attaching a torn or foreign segment).
    """
    segment = _attach_segment(name)
    buf = segment.buf
    if bytes(buf[: len(_MAGIC)]) != _MAGIC:
        segment.close()
        raise ConfigError(f"segment {name!r} is not a published plan")
    header_len = int.from_bytes(bytes(buf[len(_MAGIC) : len(_MAGIC) + 8]), "little")
    header = json.loads(bytes(buf[len(_MAGIC) + 8 : len(_MAGIC) + 8 + header_len]))
    data_start = _align(len(_MAGIC) + 8 + header_len)
    arrays: dict[str, np.ndarray] = {}
    for entry in header["arrays"]:
        start = data_start + entry["offset"]
        count = int(np.prod(entry["shape"], dtype=np.int64))
        array = np.frombuffer(
            buf, dtype=np.dtype(entry["dtype"]), count=count, offset=start
        ).reshape(entry["shape"])
        arrays[entry["name"]] = array
    try:
        plan = MADEPlan.from_buffers(header["meta"], arrays, verify=verify)
    except Exception:
        del arrays  # release the buffer exports before closing
        segment.close()
        raise
    return PlanAttachment(name, plan, segment)


# ---------------------------------------------------------------------------
# Plan-aware pickling (estimator shipment)
# ---------------------------------------------------------------------------


class PlanPickler(pickle.Pickler):
    """Pickles an object graph with plans and scratch space externalized.

    Every reachable :class:`MADEPlan` is reduced to its fingerprint (the
    worker re-binds it to the shared mapping) and every
    :class:`Workspace` to a marker (the worker gets a fresh one — scratch
    buffers and memoised programs are per-process by contract).  The
    fingerprints encountered are collected on ``self.plans`` so the
    caller knows which segments the payload requires.
    """

    def __init__(self, file):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.plans: dict[str, MADEPlan] = {}

    def persistent_id(self, obj):
        if isinstance(obj, MADEPlan):
            self.plans[obj.fingerprint] = obj
            return ("madeplan", obj.fingerprint)
        if isinstance(obj, Workspace):
            return ("workspace",)
        return None


class PlanUnpickler(pickle.Unpickler):
    """Resolves :class:`PlanPickler` ids against attached plans."""

    def __init__(self, file, plans: dict[str, MADEPlan]):
        super().__init__(file)
        self._plans = plans

    def persistent_load(self, pid):
        kind = pid[0]
        if kind == "madeplan":
            plan = self._plans.get(pid[1])
            if plan is None:
                raise ServeError(
                    f"payload references plan {pid[1]} but no matching "
                    "segment is attached"
                )
            return plan
        if kind == "workspace":
            return Workspace()
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def dump_for_worker(obj) -> tuple[bytes, list[str]]:
    """(payload bytes, fingerprints of the plans the payload needs)."""
    buffer = io.BytesIO()
    pickler = PlanPickler(buffer)
    pickler.dump(obj)
    return buffer.getvalue(), sorted(pickler.plans)


def load_in_worker(payload: bytes, plans: dict[str, MADEPlan]):
    """Rebuild a payload, binding plan references to attached mappings."""
    return PlanUnpickler(io.BytesIO(payload), plans).load()
