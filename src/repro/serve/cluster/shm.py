"""Zero-copy publication of compiled MADEPlans over shared memory.

A :class:`~repro.runtime.plan.MADEPlan` is immutable, read-only, and
content-fingerprinted — exactly the shape of data worth mapping once and
sharing across a pool of worker processes instead of pickling a copy
into each.  The generic wire format (magic + JSON header + 64-byte
aligned arrays, refcounted publisher handle, tracker-suppressed attach)
lives in :mod:`repro.runtime.shmio` — data-parallel training shares it —
and this module keeps the plan-specific layer:

- :func:`publish_plan` lays the plan's complete array set (via
  ``MADEPlan.to_buffers()``) into ONE named segment.  The returned
  :class:`PlanSegment` is refcounted; :meth:`PlanSegment.release` of
  the last reference unlinks the segment from ``/dev/shm``.
- :func:`attach_plan` maps a segment by name in a worker and rebuilds
  the plan through ``MADEPlan.from_buffers()`` with ndarray views
  straight into the mapping — zero copy, fingerprint-verified, frozen
  read-only.
- :class:`PlanPickler` / :class:`PlanUnpickler` pickle an estimator for
  shipment to a worker while externalizing every embedded plan to its
  fingerprint (``persistent_id``) and replacing scratch
  :class:`~repro.runtime.plan.Workspace` objects with fresh empty ones —
  the worker resolves fingerprints against its attached segments, so the
  heavy arrays never transit the pipe.

Lifetime contract: the parent that publishes a segment owns its unlink
(refcounted, in :class:`~repro.runtime.shmio.Segment`); workers only
ever ``close`` their mappings.  POSIX keeps the memory alive until the
last mapping closes, so a parent-side unlink never pulls pages out from
under a worker still holding views.
"""

from __future__ import annotations

import io
import itertools
import os
import pickle
from multiprocessing import shared_memory

from repro.errors import ConfigError, ServeError
from repro.runtime import shmio
from repro.runtime.plan import MADEPlan, Workspace

__all__ = [
    "PlanSegment",
    "PlanAttachment",
    "PlanPickler",
    "PlanUnpickler",
    "attach_plan",
    "dump_for_worker",
    "leaked_segments",
    "load_in_worker",
    "publish_plan",
    "segment_name",
]

_MAGIC = b"IAMPLAN1"
_ALIGN = shmio.ALIGN  # cache-line alignment for every array start
_PREFIX = "repro-plan"

# Process-global generation counter: several services (or several reload
# generations of one) may publish the same fingerprint from one PID.
_NONCES = itertools.count(1)


def segment_name(fingerprint: str, nonce: int) -> str:
    """The /dev/shm-visible name for one published plan generation.

    The publisher PID keeps independent services (and the debris of a
    crashed earlier run) from colliding on the same fingerprint.
    """
    return f"{_PREFIX}-{fingerprint}-{os.getpid():x}-{nonce:x}"


def leaked_segments() -> list[str]:
    """Plan segments still linked in /dev/shm — the benchmark/test leak gate.

    Empty on platforms without a visible shm filesystem, in which case
    the gate degrades to the in-process ``PlanSegment.released`` checks.
    """
    return shmio.leaked_segments(_PREFIX)


class PlanSegment(shmio.Segment):
    """A published plan: parent-side handle with refcounted unlink.

    Created holding one reference (the publisher's).  :meth:`retain`
    for every additional owner (e.g. a routing-table generation),
    :meth:`release` when done — the release that drops the count to
    zero closes the mapping and unlinks the name.  Both are idempotent
    past zero; ``released`` tells tests nothing leaked.
    """

    _error = ServeError

    def __init__(self, name: str, fingerprint: str, nbytes: int,
                 segment: shared_memory.SharedMemory,
                 dtype: str | None = None):
        super().__init__(name, nbytes, segment)
        self.fingerprint = fingerprint
        # The published plan's dtype string (e.g. '<f8' / '<f4'): a
        # float32 tier publishes roughly half the bytes of the float64
        # plan for the same weights, and /models reports both.
        self.dtype = dtype

    def describe(self) -> dict:
        described = super().describe()
        described["fingerprint"] = self.fingerprint
        described["dtype"] = self.dtype
        return described


def publish_plan(plan: MADEPlan, nonce: int | None = None) -> PlanSegment:
    """Copy ``plan``'s arrays into a fresh named segment, exactly once.

    The segment layout is self-describing: workers need only the name.
    Returns the refcounted parent-side handle.
    """
    if nonce is None:
        nonce = next(_NONCES)
    meta, arrays = plan.to_buffers()
    segment = shmio.publish_segment(
        segment_name(plan.fingerprint, nonce), _MAGIC, meta, arrays
    )
    return PlanSegment(segment.name, plan.fingerprint, segment.nbytes,
                       segment.mapping, dtype=meta.get("dtype"))


class PlanAttachment:
    """A worker-side mapping: the zero-copy plan plus its segment.

    ``close`` unmaps once every ndarray view has been dropped; numpy
    keeps the buffer exported while views live, in which case ``close``
    reports False and may be retried (e.g. after the old estimator is
    garbage-collected post-reload).  Workers never unlink.
    """

    def __init__(self, name: str, plan: MADEPlan,
                 segment: shared_memory.SharedMemory):
        self.name = name
        self.plan = plan
        self.fingerprint = plan.fingerprint
        self._segment = segment
        self._closed = False

    def close(self) -> bool:
        if self._closed:
            return True
        self.plan = None  # drop our own reference to the views
        try:
            self._segment.close()
        except BufferError:
            return False  # live views remain; caller retries later
        self._closed = True
        return True


def attach_plan(name: str, verify: bool = True) -> PlanAttachment:
    """Map a published segment and rebuild its plan, zero-copy.

    Every ndarray the returned plan holds is a read-only view into the
    shared mapping; ``verify`` re-hashes the bytes against the header
    fingerprint (cheap relative to a worker's lifetime, and the only
    defense against attaching a torn or foreign segment).
    """
    try:
        meta, arrays, segment = shmio.map_segment(name, _MAGIC)
    except ConfigError:
        raise ConfigError(f"segment {name!r} is not a published plan") from None
    try:
        plan = MADEPlan.from_buffers(meta, arrays, verify=verify)
    except Exception:
        del arrays  # release the buffer exports before closing
        segment.close()
        raise
    return PlanAttachment(name, plan, segment)


# ---------------------------------------------------------------------------
# Plan-aware pickling (estimator shipment)
# ---------------------------------------------------------------------------


class PlanPickler(pickle.Pickler):
    """Pickles an object graph with plans and scratch space externalized.

    Every reachable :class:`MADEPlan` is reduced to its fingerprint (the
    worker re-binds it to the shared mapping) and every
    :class:`Workspace` to a marker (the worker gets a fresh one — scratch
    buffers and memoised programs are per-process by contract).  The
    fingerprints encountered are collected on ``self.plans`` so the
    caller knows which segments the payload requires.
    """

    def __init__(self, file):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.plans: dict[str, MADEPlan] = {}

    def persistent_id(self, obj):
        if isinstance(obj, MADEPlan):
            self.plans[obj.fingerprint] = obj
            return ("madeplan", obj.fingerprint)
        if isinstance(obj, Workspace):
            return ("workspace",)
        return None


class PlanUnpickler(pickle.Unpickler):
    """Resolves :class:`PlanPickler` ids against attached plans."""

    def __init__(self, file, plans: dict[str, MADEPlan]):
        super().__init__(file)
        self._plans = plans

    def persistent_load(self, pid):
        kind = pid[0]
        if kind == "madeplan":
            plan = self._plans.get(pid[1])
            if plan is None:
                raise ServeError(
                    f"payload references plan {pid[1]} but no matching "
                    "segment is attached"
                )
            return plan
        if kind == "workspace":
            return Workspace()
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def dump_for_worker(obj) -> tuple[bytes, list[str]]:
    """(payload bytes, fingerprints of the plans the payload needs)."""
    buffer = io.BytesIO()
    pickler = PlanPickler(buffer)
    pickler.dump(obj)
    return buffer.getvalue(), sorted(pickler.plans)


def load_in_worker(payload: bytes, plans: dict[str, MADEPlan]):
    """Rebuild a payload, binding plan references to attached mappings."""
    return PlanUnpickler(io.BytesIO(payload), plans).load()
