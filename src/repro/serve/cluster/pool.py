"""Worker pool and request router for multi-process sharded serving.

Topology: the parent owns the model registry and every published plan
segment (:mod:`repro.serve.cluster.shm`); each worker process runs an
ordinary in-process :class:`~repro.serve.service.EstimationService`
(cache + micro-batcher + deterministic seeding) over estimators whose
compiled plans are zero-copy views into the shared segments.  Requests
travel over one duplex pipe per worker; a monitor thread heartbeats,
detects crashes/hangs, and respawns.

Determinism: workers answer with the same
``query_seed(model, cache_key)``-seeded progressive sampling as a
single-process service, so a served selectivity is bitwise-equal no
matter which worker computed it, whether it came from that worker's
cache, and across respawns — the property the benchmark spot-checks.

Degradation ladder (parent side, mirroring the single-process service):
admission control sheds when the routed worker's queue depth exceeds
``max_queue_depth`` (→ fallback answer marked ``source='shed'``, or
:class:`~repro.errors.OverloadError` without a fallback, HTTP 429);
deadline misses fall back exactly like the PR 2 timeout path; a worker
crash mid-request is retried once on a healthy peer before degrading.

Hot reload publishes the NEW segment first, broadcasts the new payload
(workers re-register, re-keying their caches via
``ServedModel.current_version()``), and only then releases the old
segment — readers never observe a torn routing table, and the old
mapping unlinks once the last worker drops its views.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
import time
import zlib
from dataclasses import dataclass
from multiprocessing import get_context

from repro.errors import (
    ConfigError,
    EstimateTimeoutError,
    NotFittedError,
    OverloadError,
    QueryError,
    SchemaError,
    ServeError,
    UnknownModelError,
    WorkerCrashError,
)
from repro.estimators.base import Estimator
from repro.estimators.registry import build_estimator
from repro.query.query import Query
from repro.serve.cluster import shm
from repro.serve.service import (
    EstimateResult,
    ServeConfig,
    _apply_precision,
    _estimator_from_archive,
    _mtime,
    _runtime_plan_of,
    query_seed,
)
from repro.serve.telemetry import Telemetry, TelemetrySnapshot
from repro.utils.rng import ensure_rng

__all__ = [
    "ClusterConfig",
    "ClusterService",
    "WorkerHandle",
    "WorkerPool",
]

_SHARD_POLICIES = ("replicate", "hash")

# Exceptions a worker may legitimately raise per-request; anything else
# reaches the parent as a bare ServeError with the worker's repr.
_WIRE_ERRORS = {
    cls.__name__: cls
    for cls in (
        UnknownModelError,
        QueryError,
        SchemaError,
        NotFittedError,
        ConfigError,
        ServeError,
    )
}


@dataclass
class ClusterConfig:
    """Knobs of the multi-process serving layer (docs/serving.md)."""

    workers: int = 2
    shard_policy: str = "replicate"  # 'replicate' | 'hash'
    max_queue_depth: int = 32  # per worker, estimates in flight
    timeout_ms: float | None = None  # parent-side deadline before fallback
    heartbeat_interval_s: float = 1.0
    heartbeat_misses: int = 20  # consecutive missed pongs before respawn
    spawn_timeout_s: float = 120.0  # worker import+attach+register budget
    worker_threads: int = 4  # concurrent estimates per worker (feeds batcher)
    serve: ServeConfig = dataclasses.field(default_factory=ServeConfig)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError("cluster needs at least one worker")
        if self.shard_policy not in _SHARD_POLICIES:
            raise ConfigError(
                f"shard_policy must be one of {_SHARD_POLICIES}, "
                f"got {self.shard_policy!r}"
            )
        if self.max_queue_depth < 1:
            raise ConfigError("max_queue_depth must be >= 1")

    def worker_serve_config(self) -> ServeConfig:
        """The per-worker service config: deadlines and fallback are
        enforced parent-side, so workers run both disabled."""
        return dataclasses.replace(
            self.serve, timeout_ms=None, fallback_estimator=None
        )


# ---------------------------------------------------------------------------
# Worker process entry point
# ---------------------------------------------------------------------------


def _worker_main(conn, worker_id: int, serve_config: ServeConfig,
                 worker_threads: int) -> None:
    """Run one worker: attach segments, serve estimates until EOF/shutdown.

    Control messages (load/ping/shutdown) are handled inline so the loop
    stays responsive under load; estimates are dispatched to a small
    thread pool, which is what lets the worker's micro-batcher coalesce
    concurrent requests exactly as in single-process serving.
    """
    import gc
    import os
    from concurrent.futures import ThreadPoolExecutor

    from repro.serve.service import EstimationService

    service = EstimationService(config=serve_config)
    attachments: dict[str, shm.PlanAttachment] = {}
    plans: dict[str, object] = {}  # fingerprint -> shared MADEPlan
    retired: list[shm.PlanAttachment] = []  # closed once views die
    send_lock = threading.Lock()
    executor = ThreadPoolExecutor(
        max_workers=worker_threads, thread_name_prefix=f"repro-w{worker_id}"
    )

    def reply(request_id: int, ok: bool, payload) -> None:
        with send_lock:
            try:
                conn.send(("reply", request_id, ok, payload))
            except (OSError, ValueError):
                pass  # parent gone; the recv loop will hit EOF and exit

    def handle_estimate(request_id: int, model: str, query) -> None:
        try:
            result = service.estimate(model, query)
        except Exception as exc:
            reply(request_id, False, (type(exc).__name__, str(exc)))
            return
        reply(
            request_id,
            True,
            (result.selectivity, result.source, result.degraded, result.latency_ms),
        )

    def handle_load(request_id: int, payload: bytes, segments: list[str]) -> None:
        for name in segments:
            if name not in attachments:
                attachment = shm.attach_plan(name)
                attachments[name] = attachment
                plans[attachment.fingerprint] = attachment.plan
        entries = shm.load_in_worker(payload, plans)
        for entry in entries:
            # Invalidate before and after the swap: entries cached by the
            # outgoing generation must not answer for the incoming one,
            # and version keys are only correct once the registered
            # model carries the parent's generation number.
            name = entry["name"]
            service.cache.invalidate(lambda key, _n=name: key[0] == _n)
            served = service.register(name, entry["estimator"], fallback="")
            with served.lock:
                served.version = entry["version"]
            service.cache.invalidate(lambda key, _n=name: key[0] == _n)
        live = set(segments)
        for name in list(attachments):
            if name in live:
                continue
            attachment = attachments.pop(name)
            plans.pop(attachment.fingerprint, None)
            retired.append(attachment)
        gc.collect()
        retired[:] = [a for a in retired if not a.close()]
        reply(request_id, True, (os.getpid(), service.model_names()))

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "estimate":
                executor.submit(handle_estimate, message[1], message[2], message[3])
            elif kind == "ping":
                reply(message[1], True, (os.getpid(), service.telemetry.export()))
            elif kind == "load":
                try:
                    handle_load(message[1], message[2], message[3])
                except Exception as exc:
                    reply(message[1], False, (type(exc).__name__, str(exc)))
            elif kind == "shutdown":
                reply(message[1], True, None)
                break
    finally:
        executor.shutdown(wait=True)
        service.close()
        del service, plans
        gc.collect()
        for attachment in list(attachments.values()) + retired:
            attachment.close()
        conn.close()


# ---------------------------------------------------------------------------
# Parent-side worker handle
# ---------------------------------------------------------------------------


class _Pending:
    """One in-flight request: the caller waits on ``event``."""

    __slots__ = ("event", "value", "error", "is_estimate")

    def __init__(self, is_estimate: bool):
        self.event = threading.Event()
        self.value = None
        self.error: Exception | None = None
        self.is_estimate = is_estimate


class WorkerHandle:
    """Parent-side view of one worker: pipe, pending requests, health."""

    def __init__(self, worker_id: int, process, conn):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.ready = threading.Event()  # load acked, serving
        self.dead = threading.Event()  # EOF/crash observed
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._pending: dict[int, _Pending] = {}
        self._outstanding = 0
        self._heartbeat_misses = 0
        self._telemetry: TelemetrySnapshot | None = None
        self._receiver = threading.Thread(
            target=self._receive_loop, name=f"repro-recv-{worker_id}", daemon=True
        )
        self._receiver.start()

    # -- request plumbing ------------------------------------------------
    def request(self, kind: str, *payload) -> _Pending:
        """Send one request; the returned pending resolves in the receiver."""
        if self.dead.is_set():
            raise WorkerCrashError(f"worker {self.worker_id} is down")
        request_id = next(self._ids)
        pending = _Pending(is_estimate=kind == "estimate")
        with self._lock:
            self._pending[request_id] = pending
            if pending.is_estimate:
                self._outstanding += 1
        try:
            with self._send_lock:
                self.conn.send((kind, request_id, *payload))
        except (OSError, ValueError) as exc:
            with self._lock:
                self._pending.pop(request_id, None)
                if pending.is_estimate:
                    self._outstanding -= 1
            self._mark_dead()
            raise WorkerCrashError(
                f"worker {self.worker_id} pipe closed mid-send"
            ) from exc
        return pending

    def _receive_loop(self) -> None:
        while True:
            try:
                message = self.conn.recv()
            except (EOFError, OSError):
                break
            if message[0] != "reply":  # pragma: no cover - protocol guard
                continue
            _, request_id, ok, payload = message
            with self._lock:
                pending = self._pending.pop(request_id, None)
                if pending is not None and pending.is_estimate:
                    self._outstanding -= 1
            if pending is None:
                continue  # caller gave up (deadline) — drop the late answer
            if ok:
                pending.value = payload
            else:
                kind, detail = payload
                pending.error = _WIRE_ERRORS.get(kind, ServeError)(detail)
            pending.event.set()
        self._mark_dead()

    def _mark_dead(self) -> None:
        self.dead.set()
        self.ready.clear()
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
            self._outstanding = 0
        for p in pending:
            p.error = WorkerCrashError(f"worker {self.worker_id} died mid-request")
            p.event.set()

    # -- health ----------------------------------------------------------
    def outstanding(self) -> int:
        with self._lock:
            return self._outstanding

    def available(self) -> bool:
        return self.ready.is_set() and not self.dead.is_set()

    def note_heartbeat(self, snapshot: TelemetrySnapshot | None) -> int:
        """Record a pong (or a miss when ``snapshot`` is None)."""
        with self._lock:
            if snapshot is None:
                self._heartbeat_misses += 1
            else:
                self._heartbeat_misses = 0
                self._telemetry = snapshot
            return self._heartbeat_misses

    def last_telemetry(self) -> TelemetrySnapshot | None:
        with self._lock:
            return self._telemetry

    def describe(self) -> dict:
        with self._lock:
            outstanding = self._outstanding
            misses = self._heartbeat_misses
        return {
            "worker": self.worker_id,
            "pid": self.process.pid,
            "alive": self.process.is_alive(),
            "ready": self.ready.is_set(),
            "outstanding": outstanding,
            "heartbeat_misses": misses,
        }

    def kill(self, join_timeout: float = 5.0) -> None:
        self._mark_dead()
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(join_timeout)
        if self.process.is_alive():  # pragma: no cover - stuck in C code
            self.process.kill()
            self.process.join(join_timeout)
        # Unlocked on purpose: ``request`` rechecks ``dead`` before
        # touching the pipe and already maps a send racing this close to
        # WorkerCrashError, so serializing with ``_send_lock`` here would
        # only create a lock-order hazard.
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


# ---------------------------------------------------------------------------
# Pool: lifecycle, heartbeat, respawn
# ---------------------------------------------------------------------------


class WorkerPool:
    """Spawns and supervises the worker set; owns no model state.

    ``payload_provider`` returns the current ``(payload, segment names)``
    broadcast — the pool calls it whenever a worker (re)spawns so a
    respawned worker always comes back with the live model set.
    """

    def __init__(self, config: ClusterConfig, payload_provider, telemetry: Telemetry):
        self.config = config
        self.telemetry = telemetry
        self._payload_provider = payload_provider
        self._ctx = get_context("spawn")
        self._closed = threading.Event()
        self._lock = threading.Lock()
        self._workers: list[WorkerHandle] = []
        self._restarts = 0
        self._monitor: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Spawn all workers in parallel, then wait until each is ready."""
        handles = [self._spawn(i) for i in range(self.config.workers)]
        payload, segments = self._payload_provider()
        pendings = [h.request("load", payload, segments) for h in handles]
        for handle, pending in zip(handles, pendings):
            self._await_ready(handle, pending)
        with self._lock:
            self._workers = handles
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-pool-monitor", daemon=True
        )
        self._monitor.start()

    def _spawn(self, worker_id: int) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                worker_id,
                self.config.worker_serve_config(),
                self.config.worker_threads,
            ),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return WorkerHandle(worker_id, process, parent_conn)

    def _await_ready(self, handle: WorkerHandle, pending: _Pending) -> None:
        if not pending.event.wait(self.config.spawn_timeout_s):
            handle.kill()
            raise ServeError(f"worker {handle.worker_id} failed to start in time")
        if pending.error is not None:
            handle.kill()
            raise ServeError(
                f"worker {handle.worker_id} rejected its model payload"
            ) from pending.error
        handle.ready.set()

    def broadcast(self, payload: bytes, segments: list[str]) -> None:
        """Push a model payload to every live worker; all must ack."""
        with self._lock:
            handles = list(self._workers)
        pendings = []
        for handle in handles:
            try:
                pendings.append((handle, handle.request("load", payload, segments)))
            except WorkerCrashError:
                continue  # monitor will respawn it with the fresh payload
        for handle, pending in pendings:
            if not pending.event.wait(self.config.spawn_timeout_s):
                raise ServeError(f"worker {handle.worker_id} did not ack reload")
            if pending.error is not None:
                raise ServeError(
                    f"worker {handle.worker_id} failed to load new models"
                ) from pending.error

    def workers(self) -> list[WorkerHandle]:
        with self._lock:
            return list(self._workers)

    def restarts(self) -> int:
        with self._lock:
            return self._restarts

    # -- supervision -----------------------------------------------------
    def _monitor_loop(self) -> None:
        interval = self.config.heartbeat_interval_s
        while not self._closed.wait(interval):
            for slot, handle in enumerate(self.workers()):
                if self._closed.is_set():
                    return
                try:
                    if handle.dead.is_set() or not handle.process.is_alive():
                        self._respawn(slot, handle)
                        continue
                    if not handle.ready.is_set():
                        continue
                    try:
                        pending = handle.request("ping")
                    except WorkerCrashError:
                        self._respawn(slot, handle)
                        continue
                    if pending.event.wait(interval) and pending.error is None:
                        handle.note_heartbeat(pending.value[1])
                    elif handle.note_heartbeat(None) >= self.config.heartbeat_misses:
                        self._respawn(slot, handle)  # hung, not just slow
                except Exception:  # pragma: no cover - keep supervising
                    pass

    def _respawn(self, slot: int, old: WorkerHandle) -> None:
        if self._closed.is_set():
            return
        old.kill()
        replacement = self._spawn(old.worker_id)
        payload, segments = self._payload_provider()
        pending = replacement.request("load", payload, segments)
        self._await_ready(replacement, pending)
        installed = False
        with self._lock:
            # The slot may have been swapped already by a concurrent path;
            # only install over the handle we actually replaced.
            if slot < len(self._workers) and self._workers[slot] is old:
                self._workers[slot] = replacement
                self._restarts += 1
                installed = True
        if not installed:  # pragma: no cover - lost the race
            replacement.kill()
            return
        self.telemetry.increment("cluster.respawns")

    # -- telemetry -------------------------------------------------------
    def sample_telemetry(self, timeout_s: float = 2.0) -> list[TelemetrySnapshot]:
        """Fresh per-worker snapshots (last heartbeat for the unresponsive)."""
        handles = self.workers()
        pendings = []
        for handle in handles:
            if not handle.available():
                pendings.append((handle, None))
                continue
            try:
                pendings.append((handle, handle.request("ping")))
            except WorkerCrashError:
                pendings.append((handle, None))
        snapshots = []
        for handle, pending in pendings:
            snapshot = None
            if pending is not None and pending.event.wait(timeout_s):
                if pending.error is None:
                    snapshot = pending.value[1]
                    handle.note_heartbeat(snapshot)
            if snapshot is None:
                snapshot = handle.last_telemetry()
            if snapshot is not None:
                snapshots.append(snapshot)
        return snapshots

    def close(self) -> None:
        self._closed.set()
        monitor = self._monitor
        if monitor is not None:
            monitor.join(self.config.heartbeat_interval_s * 4 + 5.0)
        with self._lock:
            handles = list(self._workers)
            self._workers = []
        pendings = []
        for handle in handles:
            try:
                pendings.append((handle, handle.request("shutdown")))
            except WorkerCrashError:
                pendings.append((handle, None))
        for handle, pending in pendings:
            if pending is not None:
                pending.event.wait(5.0)
            handle.process.join(5.0)
            handle.kill()


# ---------------------------------------------------------------------------
# The cluster-facing service
# ---------------------------------------------------------------------------


@dataclass
class _ClusterModel:
    """One generation of a served model; records are swapped, not mutated."""

    name: str
    estimator: Estimator  # parent copy: reference path + payload source
    fallback: Estimator | None
    num_rows: int
    version: int
    fingerprint: str
    segment: shm.PlanSegment
    source_path: str | None = None
    source_mtime: float | None = None
    precision: str | None = None  # pinned plan tier, re-applied on reload


class ClusterService:
    """Multi-process estimation service with the single-process surface.

    Duck-types :class:`EstimationService` where the HTTP layer and CLI
    need it (``estimate`` / ``estimate_sequential`` / ``models`` /
    ``model_names`` / ``metrics`` / ``reload`` / ``close`` /
    ``telemetry``), so ``make_server(ClusterService(...))`` just works.
    """

    def __init__(self, config: ClusterConfig | None = None):
        self.config = config or ClusterConfig()
        self.telemetry = Telemetry(window=self.config.serve.telemetry_window)
        self._lock = threading.Lock()
        self._models: dict[str, _ClusterModel] = {}
        # Serializes reference-path estimates on the parent's estimator
        # copies (estimators are not thread-safe).
        self._reference_lock = threading.Lock()
        self.pool = WorkerPool(self.config, self._current_payload, self.telemetry)
        self.started_at = time.time()
        self._started = False

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "ClusterService":
        """Spawn the worker pool, loading whatever is registered so far."""
        if not self._started:
            self.pool.start()
            self._started = True
        return self

    def __enter__(self) -> "ClusterService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self.pool.close()
        with self._lock:
            records = list(self._models.values())
            self._models.clear()
        for record in records:
            record.segment.release()

    # -- registry --------------------------------------------------------
    def register(
        self,
        name: str,
        estimator: Estimator,
        fallback: Estimator | str | None = None,
        source_path: str | None = None,
        precision: str | None = None,
    ) -> _ClusterModel:
        """Publish ``estimator``'s plan and serve it under ``name``.

        The new segment is linked and broadcast before the old
        generation's is released, so workers always hold a complete
        generation; the old segment unlinks once its last mapping closes.

        ``precision`` pins the plan tier (as in
        :meth:`EstimationService.register`): the estimator is switched
        before its plan is published — a float32 tier ships a roughly
        half-size segment — and hot reloads re-apply the pin, so the
        publish-new / broadcast / release-old sequence swaps tiers as
        atomically as it swaps weights.
        """
        estimator.table  # raises NotFittedError on unfitted models
        _apply_precision(estimator, precision)
        plan = _runtime_plan_of(estimator)
        if plan is None:
            raise ConfigError(
                f"cluster serving requires a compiled plan; {name!r} has none"
            )
        with self._lock:
            previous = self._models.get(name)
        record = _ClusterModel(
            name=name,
            estimator=estimator,
            fallback=self._resolve_fallback(estimator, fallback),
            num_rows=estimator.table.num_rows,
            version=previous.version + 1 if previous is not None else 0,
            fingerprint=plan.fingerprint,
            segment=shm.publish_plan(plan),
            source_path=source_path,
            source_mtime=_mtime(source_path),
            precision=precision,
        )
        with self._lock:
            self._models[name] = record
        try:
            if self._started:
                payload, _ = self._payload_for([record])
                _, live = self._current_payload()
                self.pool.broadcast(payload, live)
        except Exception:
            with self._lock:
                holder = self._models.get(name)
                if holder is record:
                    if previous is not None:
                        self._models[name] = previous
                    else:
                        del self._models[name]
            record.segment.release()
            raise
        if previous is not None:
            previous.segment.release()
        self.telemetry.increment("models.registered")
        return record

    def load_model(
        self, name: str, path: str, table, fallback=None,
        precision: str | None = None,
    ) -> _ClusterModel:
        """Load a ``save_iam`` archive and serve it cluster-wide."""
        return self.register(
            name, _estimator_from_archive(path, table), fallback=fallback,
            source_path=path, precision=precision,
        )

    def reload(self, name: str, force: bool = False) -> bool:
        """Hot-reload from the archive: new segment in, old one drained."""
        record = self._require_model(name)
        if record.source_path is None:
            raise ServeError(f"model {name!r} was not loaded from an archive")
        current = _mtime(record.source_path)
        if not force and current is not None and current == record.source_mtime:
            return False
        fresh = _estimator_from_archive(record.source_path, record.estimator.table)
        self.register(
            name, fresh, fallback=record.fallback or "",
            source_path=record.source_path, precision=record.precision,
        )
        self.telemetry.increment("models.reloaded")
        return True

    def unregister(self, name: str) -> None:
        with self._lock:
            record = self._models.pop(name, None)
        if record is None:
            raise UnknownModelError(f"no model named {name!r}")
        record.segment.release()
        if self._started:
            payload, segments = self._current_payload()
            self.pool.broadcast(payload, segments)

    def model_names(self) -> list[str]:
        with self._lock:
            return sorted(self._models)

    def models(self) -> list[dict]:
        with self._lock:
            records = list(self._models.values())
        return [
            {
                "name": r.name,
                "estimator": type(r.estimator).__name__,
                "kind": getattr(r.estimator, "name", "unknown"),
                "rows": r.num_rows,
                "version": r.version,
                "compiled": True,
                "plan_fingerprint": r.fingerprint,
                "plan_dtype": r.segment.dtype,
                "segment": r.segment.describe(),
                "source_path": r.source_path,
                "fallback": getattr(r.fallback, "name", None),
            }
            for r in records
        ]

    def _require_model(self, name: str) -> _ClusterModel:
        with self._lock:
            record = self._models.get(name)
        if record is None:
            raise UnknownModelError(
                f"no model named {name!r}; registered: {self.model_names()}"
            )
        return record

    def _resolve_fallback(
        self, estimator: Estimator, fallback: Estimator | str | None
    ) -> Estimator | None:
        if isinstance(fallback, Estimator):
            return fallback
        name = self.config.serve.fallback_estimator if fallback is None else fallback
        if not name:
            return None
        return build_estimator(name).fit(estimator.table)

    # -- payload shipment ------------------------------------------------
    def _payload_for(self, records: list[_ClusterModel]) -> tuple[bytes, list[str]]:
        entries = [
            {
                "name": r.name,
                "version": r.version,
                "estimator": _pruned_for_shipment(r.estimator),
            }
            for r in records
        ]
        payload, _ = shm.dump_for_worker(entries)
        return payload, sorted(r.segment.name for r in records)

    def _current_payload(self) -> tuple[bytes, list[str]]:
        """The full live model set — what a (re)spawned worker loads."""
        with self._lock:
            records = list(self._models.values())
        return self._payload_for(records)

    # -- estimation ------------------------------------------------------
    def estimate(
        self, model_name: str, query: Query, timeout_ms: float | None = None
    ) -> EstimateResult:
        """Route one query to a worker; shed, degrade, or retry as needed."""
        start = time.perf_counter()
        record = self._require_model(model_name)
        self.telemetry.increment("requests")
        self.telemetry.increment(f"requests.{model_name}")
        key = query.cache_key()

        handle = self._route(model_name, key)
        if handle is None:  # admission control: every eligible queue full
            self.telemetry.increment("cluster.shed")
            return self._degrade(record, query, "shed", start)

        deadline_ms = self.config.timeout_ms if timeout_ms is None else timeout_ms
        try:
            value = self._dispatch(handle, model_name, query, deadline_ms, start)
        except WorkerCrashError:
            # One retry on a healthy peer; the monitor respawns the dead one.
            self.telemetry.increment("cluster.retries")
            retry = self._route(model_name, key, exclude=handle)
            if retry is None:
                return self._degrade(record, query, "fallback", start, required=True)
            try:
                value = self._dispatch(retry, model_name, query, deadline_ms, start)
            except WorkerCrashError:
                return self._degrade(record, query, "fallback", start, required=True)
            except EstimateTimeoutError:
                self.telemetry.increment("timeouts")
                return self._degrade(record, query, "fallback", start, required=True)
        except EstimateTimeoutError:
            self.telemetry.increment("timeouts")
            return self._degrade(record, query, "fallback", start, required=True)

        selectivity, source, worker_id = value
        return self._finish(record, selectivity, f"worker{worker_id}.{source}",
                            False, start)

    def _dispatch(
        self,
        handle: WorkerHandle,
        model_name: str,
        query: Query,
        deadline_ms: float | None,
        start: float,
    ) -> tuple[float, str, int]:
        pending = handle.request("estimate", model_name, query)
        if deadline_ms is None:
            pending.event.wait()
        else:
            remaining = deadline_ms / 1000.0 - (time.perf_counter() - start)
            if not pending.event.wait(max(remaining, 0.0)):
                raise EstimateTimeoutError(
                    f"estimate on {model_name!r} missed its "
                    f"{deadline_ms:.0f}ms deadline"
                )
        if pending.error is not None:
            raise pending.error
        selectivity, source, _degraded, _worker_ms = pending.value
        return float(selectivity), source, handle.worker_id

    def _route(
        self, model_name: str, key: tuple, exclude: WorkerHandle | None = None
    ) -> WorkerHandle | None:
        """Pick the worker for this request, or None to shed.

        'hash' pins each (model, constraint signature) to one worker:
        queries constraining the same column set land together, so a
        worker's micro-batches coalesce into large signature groups for
        the grouped sampler driver (and its prefix cache stays hot for
        the signatures it owns).  A down or full designated worker falls
        through to the least-loaded peer (determinism does not depend on
        placement — every worker computes the same answer).
        'replicate' always takes the least-loaded available worker.
        """
        candidates = [
            h for h in self.pool.workers() if h.available() and h is not exclude
        ]
        if not candidates:
            return None
        bound = self.config.max_queue_depth
        if self.config.shard_policy == "hash":
            signature = tuple(sorted({column for column, _, _ in key}))
            digest = zlib.crc32(f"{model_name}|{signature!r}".encode())
            designated = candidates[digest % len(candidates)]
            if designated.outstanding() < bound:
                return designated
        chosen = min(candidates, key=lambda h: h.outstanding())
        return chosen if chosen.outstanding() < bound else None

    def _degrade(
        self,
        record: _ClusterModel,
        query: Query,
        source: str,
        start: float,
        required: bool = False,
    ) -> EstimateResult:
        """Answer from the parent-side fallback estimator, marked degraded."""
        if record.fallback is None:
            if source == "shed":
                raise OverloadError(
                    f"cluster queues full for {record.name!r} "
                    f"(depth bound {self.config.max_queue_depth})"
                )
            if required:
                raise
            raise ServeError(f"no fallback available for {record.name!r}")
        with self._reference_lock:
            selectivity = float(record.fallback.estimate(query))
        self.telemetry.increment("degraded")
        return self._finish(record, selectivity, source, True, start)

    def estimate_sequential(self, model_name: str, query: Query) -> float:
        """The single-process reference path (bitwise-equality oracle)."""
        record = self._require_model(model_name)
        rngs = None
        if self.config.serve.deterministic:
            rngs = [ensure_rng(query_seed(model_name, query.cache_key()))]
        with self._reference_lock:
            return float(record.estimator.estimate_batch([query], rngs=rngs)[0])

    def _finish(
        self,
        record: _ClusterModel,
        selectivity: float,
        source: str,
        degraded: bool,
        start: float,
    ) -> EstimateResult:
        latency_ms = (time.perf_counter() - start) * 1000.0
        self.telemetry.observe_ms("estimate", latency_ms)
        return EstimateResult(
            model=record.name,
            selectivity=float(selectivity),
            cardinality=float(selectivity) * record.num_rows,
            source=source,
            degraded=degraded,
            latency_ms=latency_ms,
        )

    # -- observability ---------------------------------------------------
    def metrics(self) -> dict:
        """Cluster-wide view: router counters + merged worker telemetry."""
        merged = self.telemetry.export()
        for snapshot in self.pool.sample_telemetry():
            merged.merge(snapshot)
        with self._lock:
            segments = [r.segment.describe() for r in self._models.values()]
        return {
            "uptime_seconds": round(time.time() - self.started_at, 1),
            "models": self.models(),
            "workers": [h.describe() for h in self.pool.workers()],
            "restarts": self.pool.restarts(),
            "segments": segments,
            "telemetry": merged.as_dict(),
        }


def _pruned_for_shipment(estimator: Estimator) -> Estimator:
    """A shallow clone without training-only state (optimizer tapes are
    megabytes and meaningless in a serving worker)."""
    import copy

    shipped = copy.copy(estimator)
    inner = getattr(shipped, "model", None)
    if inner is not None and getattr(inner, "trainer", None) is not None:
        inner = copy.copy(inner)
        inner.trainer = None
        shipped.model = inner
    return shipped
