"""repro.serve — a concurrent estimation service over fitted estimators.

Layers (each usable on its own):

- :mod:`repro.serve.cache` — LRU+TTL result cache keyed on canonical
  query form;
- :mod:`repro.serve.batcher` — micro-batching so concurrent callers
  share AR forward passes (Section 5.3);
- :mod:`repro.serve.telemetry` — counters and latency percentiles;
- :mod:`repro.serve.service` — the registry/cache/batcher/fallback
  orchestration;
- :mod:`repro.serve.http` — the stdlib JSON-over-HTTP front end
  (``python -m repro.serve`` starts it);
- :mod:`repro.serve.cluster` — multi-process sharded serving over
  zero-copy shared plans (``python -m repro.serve --workers N``).

See docs/serving.md for architecture and protocol.
"""

from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.cache import CacheStats, QueryCache
from repro.serve.cluster import ClusterConfig, ClusterService
from repro.serve.http import make_server, start_in_background
from repro.serve.service import (
    EstimateResult,
    EstimationService,
    ServeConfig,
    ServedModel,
    query_seed,
)
from repro.serve.telemetry import LatencySeries, Telemetry, TelemetrySnapshot

__all__ = [
    "BatcherStats",
    "CacheStats",
    "ClusterConfig",
    "ClusterService",
    "EstimateResult",
    "EstimationService",
    "LatencySeries",
    "MicroBatcher",
    "QueryCache",
    "ServeConfig",
    "ServedModel",
    "Telemetry",
    "TelemetrySnapshot",
    "make_server",
    "query_seed",
    "start_in_background",
]
