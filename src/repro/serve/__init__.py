"""repro.serve — a concurrent estimation service over fitted estimators.

Layers (each usable on its own):

- :mod:`repro.serve.cache` — LRU+TTL result cache keyed on canonical
  query form;
- :mod:`repro.serve.batcher` — micro-batching so concurrent callers
  share AR forward passes (Section 5.3);
- :mod:`repro.serve.telemetry` — counters and latency percentiles;
- :mod:`repro.serve.service` — the registry/cache/batcher/fallback
  orchestration;
- :mod:`repro.serve.http` — the stdlib JSON-over-HTTP front end
  (``python -m repro.serve`` starts it).

See docs/serving.md for architecture and protocol.
"""

from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.cache import CacheStats, QueryCache
from repro.serve.http import make_server, start_in_background
from repro.serve.service import (
    EstimateResult,
    EstimationService,
    ServeConfig,
    ServedModel,
    query_seed,
)
from repro.serve.telemetry import LatencySeries, Telemetry

__all__ = [
    "BatcherStats",
    "CacheStats",
    "EstimateResult",
    "EstimationService",
    "LatencySeries",
    "MicroBatcher",
    "QueryCache",
    "ServeConfig",
    "ServedModel",
    "Telemetry",
    "make_server",
    "query_seed",
    "start_in_background",
]
