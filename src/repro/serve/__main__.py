"""CLI: run (or smoke-test) the estimation service.

Usage::

    python -m repro.serve                      # fit a demo IAM, serve :8080
    python -m repro.serve --port 9000 --dataset wisdm --rows 20000
    python -m repro.serve --workers 4          # multi-process sharded pool
    python -m repro.serve --selftest           # CI smoke: fit, serve, verify
    python -m repro.serve --selftest --workers 2   # multi-process smoke

``--selftest`` exercises the whole stack in-process — concurrent clients
through micro-batching and the cache, bitwise-equality against the
sequential reference, an HTTP round trip, and the degraded/timeout
fallback — and exits nonzero on any violation.  With ``--workers N``
(N > 1) the selftest instead drives the multi-process cluster: bitwise
equality across worker processes, merged telemetry, an HTTP round trip,
a SIGKILL/respawn cycle, the timeout-degrade path, and a shared-memory
leak check.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request

from repro.serve.http import make_server, start_in_background
from repro.serve.service import EstimationService, ServeConfig

_FAST_IAM = dict(
    n_components=6,
    gmm_domain_threshold=100,
    epochs=2,
    learning_rate=1e-2,
    hidden_sizes=(16, 16),
    n_progressive_samples=64,
    samples_per_component=500,
    interval_kind="empirical",
    seed=0,
)


def _fit_demo_estimator(dataset: str, rows: int, epochs: int | None,
                        quiet: bool = False):
    from repro.core.config import IAMConfig
    from repro.datasets import load_dataset
    from repro.estimators.iam import IAMEstimator

    table = load_dataset(dataset, n_rows=rows, seed=0)
    overrides = dict(_FAST_IAM)
    if epochs is not None:
        overrides["epochs"] = epochs
    if not quiet:
        print(f"fitting IAM on {dataset} ({table.num_rows} rows) ...", flush=True)
    started = time.perf_counter()
    estimator = IAMEstimator(config=IAMConfig(**overrides)).fit(table)
    if not quiet:
        print(f"fitted in {time.perf_counter() - started:.1f}s", flush=True)
    return estimator


def build_demo_service(
    dataset: str = "twi",
    rows: int = 1500,
    epochs: int | None = None,
    config: ServeConfig | None = None,
    quiet: bool = False,
    workers: int = 1,
    shard_policy: str = "replicate",
    precision: str | None = None,
) -> EstimationService:
    """Fit a small IAM on a synthetic dataset and serve it by name.

    ``workers > 1`` returns a started
    :class:`~repro.serve.cluster.ClusterService` instead (same duck type
    as far as the HTTP layer is concerned).  ``precision`` pins the
    compiled-plan tier ('float64' | 'float32') for the served model.
    """
    estimator = _fit_demo_estimator(dataset, rows, epochs, quiet=quiet)
    if workers > 1:
        from repro.serve.cluster import ClusterConfig, ClusterService

        cluster = ClusterService(
            ClusterConfig(
                workers=workers,
                shard_policy=shard_policy,
                serve=config or ServeConfig(),
            )
        )
        cluster.register(dataset, estimator, precision=precision)
        if not quiet:
            print(f"starting {workers} worker processes ...", flush=True)
        cluster.start()
        return cluster
    service = EstimationService(config=config)
    service.register(dataset, estimator, precision=precision)
    return service


# ----------------------------------------------------------------------
# Selftest
# ----------------------------------------------------------------------
def _http_json(url: str, payload: dict | None = None) -> tuple[int, dict]:
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def _selftest_queries(service: EstimationService, name: str, n: int):
    from repro.query.generator import QueryGenerator

    model = service._require_model(name)
    with model.lock:
        table = model.estimator.table
    generator = QueryGenerator(table, seed=42)
    return [generator.generate() for _ in range(n)]


def run_selftest(dataset: str = "twi", rows: int = 1500) -> int:
    """End-to-end smoke test; returns a process exit code."""
    config = ServeConfig(max_batch_size=8, max_wait_ms=5.0, cache_entries=512)
    service = build_demo_service(dataset, rows=rows, config=config)
    failures: list[str] = []
    try:
        queries = _selftest_queries(service, dataset, 12)
        reference = [service.estimate_sequential(dataset, q) for q in queries]

        # 8 threads, 2 passes: the second pass must hit the cache, and
        # every served value must equal the sequential reference bitwise.
        results: dict[tuple[int, int], float] = {}
        errors: list[str] = []
        lock = threading.Lock()

        def client(thread_id: int) -> None:
            for repeat in range(2):
                for qi, query in enumerate(queries):
                    try:
                        r = service.estimate(dataset, query)
                    except Exception as exc:  # pragma: no cover - diagnostics
                        with lock:
                            errors.append(f"thread {thread_id}: {exc!r}")
                        return
                    with lock:
                        results[(thread_id * 2 + repeat, qi)] = r.selectivity

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            failures.append(f"client errors: {errors[:3]}")
        mismatches = sum(
            1 for (pass_id, qi), v in results.items() if v != reference[qi]
        )
        if mismatches:
            failures.append(f"{mismatches} served values differ from sequential reference")
        hits = service.cache.stats().hits
        if hits == 0:
            failures.append("repeated workload produced zero cache hits")

        # HTTP round trip on an ephemeral port.
        server = make_server(service, port=0)
        start_in_background(server)
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            status, health = _http_json(f"{base}/healthz")
            if status != 200 or health.get("status") != "ok":
                failures.append(f"/healthz returned {status}: {health}")
            predicates = [[p.column, p.op.value, float(p.value)] for p in queries[0]]
            status, body = _http_json(
                f"{base}/estimate", {"model": dataset, "predicates": predicates}
            )
            if status != 200:
                failures.append(f"/estimate returned {status}: {body}")
            elif body["selectivity"] != reference[0]:
                failures.append("HTTP selectivity differs from sequential reference")
            status, metrics = _http_json(f"{base}/metrics")
            if status != 200 or metrics["cache"]["hits"] == 0:
                failures.append(f"/metrics unhealthy (status {status})")
            status, _ = _http_json(
                f"{base}/estimate", {"model": "nope", "predicates": predicates}
            )
            if status != 404:
                failures.append(f"unknown model returned {status}, expected 404")
        finally:
            server.shutdown()
            server.server_close()

        # Degraded path: a deliberately slow model must fall back.
        model = service._require_model(dataset)
        with model.lock:
            estimator = model.estimator
        service.register(
            "slow", _Slowed(estimator, delay_seconds=0.25), fallback="sampling"
        )
        degraded = service.estimate("slow", queries[0], timeout_ms=10.0)
        if not degraded.degraded or degraded.source != "fallback":
            failures.append(f"timeout did not degrade: {degraded.as_dict()}")
    finally:
        service.close()

    if failures:
        print("SELFTEST FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    stats = service.cache.stats()
    print(
        "selftest ok: "
        f"{service.telemetry.counter('requests')} requests, "
        f"{stats.hits} cache hits, "
        f"{service.telemetry.counter('degraded')} degraded"
    )
    return 0


class _Slowed:
    """Wrap a fitted estimator with artificial latency (selftest only)."""

    def __init__(self, inner, delay_seconds: float):
        self._inner = inner
        self._delay = delay_seconds
        self.name = f"slow-{getattr(inner, 'name', 'estimator')}"

    @property
    def table(self):
        return self._inner.table

    def estimate(self, query):
        time.sleep(self._delay)
        return self._inner.estimate(query)

    def estimate_batch(self, queries, rngs=None):
        time.sleep(self._delay)
        return self._inner.estimate_batch(queries, rngs=rngs)

    def runtime_plan(self):
        return self._inner.runtime_plan()


def run_cluster_selftest(
    dataset: str = "twi",
    rows: int = 1500,
    workers: int = 2,
    shard_policy: str = "replicate",
) -> int:
    """Multi-process smoke test; returns a process exit code.

    Covers worker spawn/warmup, bitwise equality of concurrently served
    answers against the in-parent sequential reference, merged
    telemetry, an HTTP round trip, a SIGKILL/respawn cycle, the
    timeout-degrade path, and a /dev/shm leak check on close.
    """
    import os
    import signal

    from repro.query.generator import QueryGenerator
    from repro.serve.cluster import ClusterConfig, ClusterService, leaked_segments
    from repro.serve.cluster.testing import SlowEstimator

    baseline = leaked_segments()
    estimator = _fit_demo_estimator(dataset, rows, epochs=None)
    config = ClusterConfig(
        workers=workers,
        shard_policy=shard_policy,
        heartbeat_interval_s=0.2,
        serve=ServeConfig(max_batch_size=8, max_wait_ms=2.0, cache_entries=512),
    )
    failures: list[str] = []
    service = ClusterService(config)
    try:
        service.register(dataset, estimator, fallback="sampling")
        print(f"starting {workers} worker processes ...", flush=True)
        service.start()

        generator = QueryGenerator(estimator.table, seed=42)
        queries = [generator.generate() for _ in range(10)]
        reference = [service.estimate_sequential(dataset, q) for q in queries]

        # Concurrent clients: every answer, from any worker, must equal
        # the sequential reference bitwise.
        results: dict[tuple[int, int], float] = {}
        errors: list[str] = []
        lock = threading.Lock()

        def client(thread_id: int) -> None:
            for qi, query in enumerate(queries):
                try:
                    r = service.estimate(dataset, query)
                except Exception as exc:  # pragma: no cover - diagnostics
                    with lock:
                        errors.append(f"thread {thread_id}: {exc!r}")
                    return
                with lock:
                    results[(thread_id, qi)] = r.selectivity

        threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            failures.append(f"client errors: {errors[:3]}")
        mismatches = sum(1 for (_, qi), v in results.items() if v != reference[qi])
        if mismatches:
            failures.append(
                f"{mismatches} cluster answers differ from sequential reference"
            )

        # Merged telemetry across worker processes.
        metrics = service.metrics()
        alive = [w for w in metrics["workers"] if w["alive"]]
        if len(alive) != workers:
            failures.append(f"expected {workers} live workers: {metrics['workers']}")
        served = metrics["telemetry"]["counters"].get("requests", 0)
        if served < len(results):
            failures.append(
                f"merged telemetry lost requests: {served} < {len(results)}"
            )

        # HTTP round trip straight onto the cluster service.
        server = make_server(service, port=0)
        start_in_background(server)
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            status, health = _http_json(f"{base}/healthz")
            if status != 200 or health.get("status") != "ok":
                failures.append(f"/healthz returned {status}: {health}")
            predicates = [[p.column, p.op.value, float(p.value)] for p in queries[0]]
            status, body = _http_json(
                f"{base}/estimate", {"model": dataset, "predicates": predicates}
            )
            if status != 200:
                failures.append(f"/estimate returned {status}: {body}")
            elif body["selectivity"] != reference[0]:
                failures.append("HTTP selectivity differs from sequential reference")
        finally:
            server.shutdown()
            server.server_close()

        # SIGKILL one worker mid-flight: the monitor must respawn it and
        # answers must stay bitwise-identical throughout.
        victim = service.pool.workers()[0].process.pid
        os.kill(victim, signal.SIGKILL)
        deadline = time.perf_counter() + 30.0
        while service.pool.restarts() < 1 and time.perf_counter() < deadline:
            time.sleep(0.05)
        if service.pool.restarts() < 1:
            failures.append("killed worker was never respawned")
        after = [service.estimate(dataset, q).selectivity for q in queries]
        if after != reference:
            failures.append("answers diverged after worker respawn")

        # Timeout-degrade path through the cluster router.  (_Slowed is
        # defined in this __main__ module, which spawn children cannot
        # re-import; SlowEstimator lives in an importable module.)
        service.register(
            "slow", SlowEstimator(estimator, delay_seconds=0.3), fallback="sampling"
        )
        degraded = service.estimate("slow", queries[0], timeout_ms=15.0)
        if not degraded.degraded or degraded.source != "fallback":
            failures.append(f"timeout did not degrade: {degraded.as_dict()}")
    finally:
        service.close()

    leaks = [s for s in leaked_segments() if s not in baseline]
    if leaks:
        failures.append(f"leaked shared-memory segments: {leaks}")

    if failures:
        print("CLUSTER SELFTEST FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "cluster selftest ok: "
        f"{workers} workers ({shard_policy}), "
        f"{len(results)} concurrent answers bitwise-equal, "
        f"{service.pool.restarts()} respawn(s), no leaked segments"
    )
    return 0


# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve fitted selectivity estimators over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--dataset", choices=["twi", "wisdm", "higgs"], default="twi")
    parser.add_argument("--rows", type=int, default=1500, help="demo table rows")
    parser.add_argument("--epochs", type=int, default=None, help="demo IAM epochs")
    parser.add_argument("--timeout-ms", type=float, default=None,
                        help="per-request deadline before fallback")
    parser.add_argument("--max-batch-size", type=int, default=16)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--cache-ttl", type=float, default=None,
                        help="result cache TTL in seconds")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes; >1 serves through the "
                             "multi-process cluster")
    parser.add_argument("--shard-policy", choices=["replicate", "hash"],
                        default="replicate",
                        help="request routing across workers")
    parser.add_argument("--precision", choices=["float64", "float32"],
                        default=None,
                        help="compiled-plan precision tier for the demo "
                             "model (float32 = the q-error-gated serving "
                             "tier, half-size plans and shm segments)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the end-to-end smoke test and exit")
    args = parser.parse_args(argv)

    if args.selftest:
        if args.workers > 1:
            return run_cluster_selftest(
                args.dataset, rows=args.rows,
                workers=args.workers, shard_policy=args.shard_policy,
            )
        return run_selftest(args.dataset, rows=args.rows)

    config = ServeConfig(
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        timeout_ms=args.timeout_ms,
        cache_ttl_seconds=args.cache_ttl,
    )
    service = build_demo_service(
        args.dataset, rows=args.rows, epochs=args.epochs, config=config,
        workers=args.workers, shard_policy=args.shard_policy,
        precision=args.precision,
    )
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"serving {service.model_names()} on http://{host}:{port}", flush=True)
    print("endpoints: POST /estimate, GET /healthz, GET /models, GET /metrics")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
