"""CLI: run (or smoke-test) the estimation service.

Usage::

    python -m repro.serve                      # fit a demo IAM, serve :8080
    python -m repro.serve --port 9000 --dataset wisdm --rows 20000
    python -m repro.serve --selftest           # CI smoke: fit, serve, verify

``--selftest`` exercises the whole stack in-process — concurrent clients
through micro-batching and the cache, bitwise-equality against the
sequential reference, an HTTP round trip, and the degraded/timeout
fallback — and exits nonzero on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request

from repro.serve.http import make_server, start_in_background
from repro.serve.service import EstimationService, ServeConfig

_FAST_IAM = dict(
    n_components=6,
    gmm_domain_threshold=100,
    epochs=2,
    learning_rate=1e-2,
    hidden_sizes=(16, 16),
    n_progressive_samples=64,
    samples_per_component=500,
    interval_kind="empirical",
    seed=0,
)


def build_demo_service(
    dataset: str = "twi",
    rows: int = 1500,
    epochs: int | None = None,
    config: ServeConfig | None = None,
    quiet: bool = False,
) -> EstimationService:
    """Fit a small IAM on a synthetic dataset and serve it by name."""
    from repro.core.config import IAMConfig
    from repro.datasets import load_dataset
    from repro.estimators.iam import IAMEstimator

    table = load_dataset(dataset, n_rows=rows, seed=0)
    overrides = dict(_FAST_IAM)
    if epochs is not None:
        overrides["epochs"] = epochs
    if not quiet:
        print(f"fitting IAM on {dataset} ({table.num_rows} rows) ...", flush=True)
    started = time.perf_counter()
    estimator = IAMEstimator(config=IAMConfig(**overrides)).fit(table)
    if not quiet:
        print(f"fitted in {time.perf_counter() - started:.1f}s", flush=True)
    service = EstimationService(config=config)
    service.register(dataset, estimator)
    return service


# ----------------------------------------------------------------------
# Selftest
# ----------------------------------------------------------------------
def _http_json(url: str, payload: dict | None = None) -> tuple[int, dict]:
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def _selftest_queries(service: EstimationService, name: str, n: int):
    from repro.query.generator import QueryGenerator

    model = service._require_model(name)
    with model.lock:
        table = model.estimator.table
    generator = QueryGenerator(table, seed=42)
    return [generator.generate() for _ in range(n)]


def run_selftest(dataset: str = "twi", rows: int = 1500) -> int:
    """End-to-end smoke test; returns a process exit code."""
    config = ServeConfig(max_batch_size=8, max_wait_ms=5.0, cache_entries=512)
    service = build_demo_service(dataset, rows=rows, config=config)
    failures: list[str] = []
    try:
        queries = _selftest_queries(service, dataset, 12)
        reference = [service.estimate_sequential(dataset, q) for q in queries]

        # 8 threads, 2 passes: the second pass must hit the cache, and
        # every served value must equal the sequential reference bitwise.
        results: dict[tuple[int, int], float] = {}
        errors: list[str] = []
        lock = threading.Lock()

        def client(thread_id: int) -> None:
            for repeat in range(2):
                for qi, query in enumerate(queries):
                    try:
                        r = service.estimate(dataset, query)
                    except Exception as exc:  # pragma: no cover - diagnostics
                        with lock:
                            errors.append(f"thread {thread_id}: {exc!r}")
                        return
                    with lock:
                        results[(thread_id * 2 + repeat, qi)] = r.selectivity

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            failures.append(f"client errors: {errors[:3]}")
        mismatches = sum(
            1 for (pass_id, qi), v in results.items() if v != reference[qi]
        )
        if mismatches:
            failures.append(f"{mismatches} served values differ from sequential reference")
        hits = service.cache.stats().hits
        if hits == 0:
            failures.append("repeated workload produced zero cache hits")

        # HTTP round trip on an ephemeral port.
        server = make_server(service, port=0)
        start_in_background(server)
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            status, health = _http_json(f"{base}/healthz")
            if status != 200 or health.get("status") != "ok":
                failures.append(f"/healthz returned {status}: {health}")
            predicates = [[p.column, p.op.value, float(p.value)] for p in queries[0]]
            status, body = _http_json(
                f"{base}/estimate", {"model": dataset, "predicates": predicates}
            )
            if status != 200:
                failures.append(f"/estimate returned {status}: {body}")
            elif body["selectivity"] != reference[0]:
                failures.append("HTTP selectivity differs from sequential reference")
            status, metrics = _http_json(f"{base}/metrics")
            if status != 200 or metrics["cache"]["hits"] == 0:
                failures.append(f"/metrics unhealthy (status {status})")
            status, _ = _http_json(
                f"{base}/estimate", {"model": "nope", "predicates": predicates}
            )
            if status != 404:
                failures.append(f"unknown model returned {status}, expected 404")
        finally:
            server.shutdown()
            server.server_close()

        # Degraded path: a deliberately slow model must fall back.
        model = service._require_model(dataset)
        with model.lock:
            estimator = model.estimator
        service.register(
            "slow", _Slowed(estimator, delay_seconds=0.25), fallback="sampling"
        )
        degraded = service.estimate("slow", queries[0], timeout_ms=10.0)
        if not degraded.degraded or degraded.source != "fallback":
            failures.append(f"timeout did not degrade: {degraded.as_dict()}")
    finally:
        service.close()

    if failures:
        print("SELFTEST FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    stats = service.cache.stats()
    print(
        "selftest ok: "
        f"{service.telemetry.counter('requests')} requests, "
        f"{stats.hits} cache hits, "
        f"{service.telemetry.counter('degraded')} degraded"
    )
    return 0


class _Slowed:
    """Wrap a fitted estimator with artificial latency (selftest only)."""

    def __init__(self, inner, delay_seconds: float):
        self._inner = inner
        self._delay = delay_seconds
        self.name = f"slow-{getattr(inner, 'name', 'estimator')}"

    @property
    def table(self):
        return self._inner.table

    def estimate(self, query):
        time.sleep(self._delay)
        return self._inner.estimate(query)

    def estimate_batch(self, queries, rngs=None):
        time.sleep(self._delay)
        return self._inner.estimate_batch(queries, rngs=rngs)


# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve fitted selectivity estimators over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--dataset", choices=["twi", "wisdm", "higgs"], default="twi")
    parser.add_argument("--rows", type=int, default=1500, help="demo table rows")
    parser.add_argument("--epochs", type=int, default=None, help="demo IAM epochs")
    parser.add_argument("--timeout-ms", type=float, default=None,
                        help="per-request deadline before fallback")
    parser.add_argument("--max-batch-size", type=int, default=16)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--cache-ttl", type=float, default=None,
                        help="result cache TTL in seconds")
    parser.add_argument("--selftest", action="store_true",
                        help="run the end-to-end smoke test and exit")
    args = parser.parse_args(argv)

    if args.selftest:
        return run_selftest(args.dataset, rows=args.rows)

    config = ServeConfig(
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        timeout_ms=args.timeout_ms,
        cache_ttl_seconds=args.cache_ttl,
    )
    service = build_demo_service(
        args.dataset, rows=args.rows, epochs=args.epochs, config=config
    )
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"serving {service.model_names()} on http://{host}:{port}", flush=True)
    print("endpoints: POST /estimate, GET /healthz, GET /models, GET /metrics")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
