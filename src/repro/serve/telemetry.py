"""Request counters and latency histograms for the estimation service.

Latencies are kept in a bounded per-series reservoir (the most recent
``window`` observations) from which p50/p95/p99 are computed on demand —
cheap enough for a ``/metrics`` endpoint polled by humans, with bounded
memory under sustained traffic.
"""

from __future__ import annotations

import math
import threading
from collections import deque

from repro.errors import ConfigError

_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


class LatencySeries:
    """One named latency stream: lifetime count/total + recent window."""

    def __init__(self, window: int = 2048):
        if window < 1:
            raise ConfigError("latency window must be >= 1")
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0
        self._recent: deque[float] = deque(maxlen=window)

    def observe(self, ms: float) -> None:
        self.count += 1
        self.total_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms
        self._recent.append(ms)

    def summary(self) -> dict:
        ordered = sorted(self._recent)
        out = {
            "count": self.count,
            "mean_ms": round(self.total_ms / self.count, 3) if self.count else 0.0,
            "max_ms": round(self.max_ms, 3),
        }
        for label, q in _QUANTILES:
            out[f"{label}_ms"] = round(_quantile(ordered, q), 3)
        return out


def _quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile over an already-sorted sample (0 if empty)."""
    if not ordered:
        return 0.0
    rank = max(math.ceil(q * len(ordered)), 1) - 1
    return ordered[min(rank, len(ordered) - 1)]


class Telemetry:
    """Thread-safe counters + latency series with a snapshot API."""

    def __init__(self, window: int = 2048):
        self._window = window
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._latencies: dict[str, LatencySeries] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe_ms(self, name: str, ms: float) -> None:
        with self._lock:
            series = self._latencies.get(name)
            if series is None:
                series = self._latencies[name] = LatencySeries(self._window)
            series.observe(ms)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """JSON-ready view: {'counters': {...}, 'latency': {name: {...}}}."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "latency": {
                    name: series.summary()
                    for name, series in sorted(self._latencies.items())
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._latencies.clear()
