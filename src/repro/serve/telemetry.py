"""Request counters and latency histograms for the estimation service.

Latencies are kept in a bounded per-series reservoir (the most recent
``window`` observations) from which p50/p95/p99 are computed on demand —
cheap enough for a ``/metrics`` endpoint polled by humans, with bounded
memory under sustained traffic.

Multi-process aggregation: :meth:`Telemetry.export` captures the full
state (counters plus reservoir samples, not just percentiles) as a
picklable :class:`TelemetrySnapshot`; snapshots from several worker
processes :meth:`~TelemetrySnapshot.merge` into one view whose counters
are sums and whose percentiles are computed over the pooled reservoirs —
what a sharded ``/metrics`` endpoint reports instead of only the
parent's numbers.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigError

_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


class LatencySeries:
    """One named latency stream: lifetime count/total + recent window."""

    def __init__(self, window: int = 2048):
        if window < 1:
            raise ConfigError("latency window must be >= 1")
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0
        self._recent: deque[float] = deque(maxlen=window)

    def observe(self, ms: float) -> None:
        self.count += 1
        self.total_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms
        self._recent.append(ms)

    def summary(self) -> dict:
        return _series_summary(self.count, self.total_ms, self.max_ms, self._recent)

    def state(self) -> "SeriesState":
        """Mergeable snapshot: lifetime stats plus the raw reservoir."""
        return SeriesState(
            count=self.count,
            total_ms=self.total_ms,
            max_ms=self.max_ms,
            recent=list(self._recent),
        )


def _series_summary(count: int, total_ms: float, max_ms: float, recent) -> dict:
    ordered = sorted(recent)
    out = {
        "count": count,
        "mean_ms": round(total_ms / count, 3) if count else 0.0,
        "max_ms": round(max_ms, 3),
    }
    for label, q in _QUANTILES:
        out[f"{label}_ms"] = round(_quantile(ordered, q), 3)
    return out


def _quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile over an already-sorted sample (0 if empty)."""
    if not ordered:
        return 0.0
    rank = max(math.ceil(q * len(ordered)), 1) - 1
    return ordered[min(rank, len(ordered) - 1)]


@dataclass
class SeriesState:
    """One latency series' mergeable state (picklable, JSON-safe)."""

    count: int = 0
    total_ms: float = 0.0
    max_ms: float = 0.0
    recent: list[float] = field(default_factory=list)

    def merge(self, other: "SeriesState") -> None:
        self.count += other.count
        self.total_ms += other.total_ms
        self.max_ms = max(self.max_ms, other.max_ms)
        self.recent.extend(other.recent)

    def summary(self) -> dict:
        return _series_summary(self.count, self.total_ms, self.max_ms, self.recent)


@dataclass
class TelemetrySnapshot:
    """A telemetry capture that can absorb captures from other processes.

    Counters merge by summation; latency series merge by summing the
    lifetime stats and *pooling* the reservoirs, so merged percentiles
    are computed over the union of the workers' recent samples (bounded
    by ``workers × window``) — not averaged percentiles, which would be
    statistically meaningless.
    """

    counters: dict[str, int] = field(default_factory=dict)
    series: dict[str, SeriesState] = field(default_factory=dict)

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Fold ``other`` into this snapshot and return ``self``."""
        for name, amount in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + amount
        for name, state in other.series.items():
            mine = self.series.get(name)
            if mine is None:
                mine = self.series[name] = SeriesState()
            mine.merge(state)
        return self

    def as_dict(self) -> dict:
        """The JSON shape :meth:`Telemetry.snapshot` has always served."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "latency": {
                name: state.summary() for name, state in sorted(self.series.items())
            },
        }


class Telemetry:
    """Thread-safe counters + latency series with a snapshot API."""

    def __init__(self, window: int = 2048):
        self._window = window
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._latencies: dict[str, LatencySeries] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe_ms(self, name: str, ms: float) -> None:
        with self._lock:
            series = self._latencies.get(name)
            if series is None:
                series = self._latencies[name] = LatencySeries(self._window)
            series.observe(ms)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """JSON-ready view: {'counters': {...}, 'latency': {name: {...}}}."""
        return self.export().as_dict()

    def export(self) -> TelemetrySnapshot:
        """Full mergeable state — ship between processes, then ``merge``."""
        with self._lock:
            return TelemetrySnapshot(
                counters=dict(self._counters),
                series={
                    name: series.state() for name, series in self._latencies.items()
                },
            )

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._latencies.clear()
