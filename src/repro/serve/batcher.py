"""Micro-batching: coalesce concurrent estimate calls into shared batches.

Concurrent callers block in :meth:`MicroBatcher.submit`; a single worker
thread drains the queue into batches of at most ``max_batch_size``
requests, waiting up to ``max_wait_ms`` after the first request for
companions, and runs one ``run_batch(queries, rngs)`` call per batch.
For AR estimators that one call shares the forward passes across all
coalesced queries (paper Section 5.3), which is where serving latency is
won; per-query generators keep each result independent of who else
happened to be in the batch.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError, EstimateTimeoutError, ServeError
from repro.query.query import Query

_SHUTDOWN = object()


@dataclass
class _Pending:
    """One in-flight request: inputs plus a slot the worker fills."""

    query: Query
    rng: np.random.Generator | None
    done: threading.Event = field(default_factory=threading.Event)
    result: float | None = None
    error: BaseException | None = None


@dataclass
class BatcherStats:
    batches: int = 0
    requests: int = 0
    largest_batch: int = 0
    # Signature-grouping stats, reported back by grouped batch drivers
    # via MicroBatcher.note_groups (estimators without a grouped driver
    # leave them at zero).
    grouped_batches: int = 0
    groups: int = 0
    grouped_requests: int = 0
    largest_group: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    @property
    def groups_per_batch(self) -> float:
        return self.groups / self.grouped_batches if self.grouped_batches else 0.0

    @property
    def mean_group_size(self) -> float:
        return self.grouped_requests / self.groups if self.groups else 0.0


class MicroBatcher:
    """Coalesces ``submit`` calls into ``run_batch`` invocations.

    ``run_batch(queries, rngs)`` receives the coalesced queries and, when
    every caller supplied one, a parallel list of per-query generators
    (otherwise ``None``). ``max_wait_ms=0`` batches only what is already
    queued (no added latency); larger values trade a bounded delay for
    bigger shared batches.
    """

    def __init__(
        self,
        run_batch: Callable[[list[Query], Sequence | None], np.ndarray],
        max_batch_size: int = 16,
        max_wait_ms: float = 2.0,
        name: str = "batcher",
    ):
        if max_batch_size < 1:
            raise ConfigError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ConfigError("max_wait_ms must be >= 0")
        self.run_batch = run_batch
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.name = name
        self._queue: queue.Queue = queue.Queue()
        self._stats = BatcherStats()
        self._stats_lock = threading.Lock()
        # An Event, not a bool: submit() polls it from request threads
        # while close() sets it, and an Event is its own synchronisation.
        self._closed = threading.Event()
        self._worker = threading.Thread(
            target=self._run, name=f"repro-serve-{name}", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    def submit(
        self,
        query: Query,
        rng: np.random.Generator | None = None,
        timeout_seconds: float | None = None,
    ) -> float:
        """Estimate one query, sharing a batch with concurrent callers.

        Blocks until the worker produces the result. Raises
        :class:`EstimateTimeoutError` if the deadline passes first (the
        batch still completes in the background; only this caller gives
        up), and re-raises whatever ``run_batch`` raised otherwise.
        """
        if self._closed.is_set():
            raise ServeError(f"batcher {self.name!r} is closed")
        pending = _Pending(query=query, rng=rng)
        self._queue.put(pending)
        if not pending.done.wait(timeout=timeout_seconds):
            raise EstimateTimeoutError(
                f"estimate missed its {timeout_seconds * 1000:.0f} ms deadline"
            )
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    def stats(self) -> BatcherStats:
        with self._stats_lock:
            return BatcherStats(
                batches=self._stats.batches,
                requests=self._stats.requests,
                largest_batch=self._stats.largest_batch,
                grouped_batches=self._stats.grouped_batches,
                groups=self._stats.groups,
                grouped_requests=self._stats.grouped_requests,
                largest_group=self._stats.largest_group,
            )

    def note_groups(self, group_sizes: Sequence[int]) -> None:
        """Record one executed batch's signature-group sizes.

        Called by the batch runner *after* ``run_batch`` returns (never
        while it holds the model lock inside), with one entry per
        constrained-column signature group the driver formed.
        """
        if not group_sizes:
            return
        with self._stats_lock:
            self._stats.grouped_batches += 1
            self._stats.groups += len(group_sizes)
            self._stats.grouped_requests += sum(group_sizes)
            self._stats.largest_group = max(
                self._stats.largest_group, max(group_sizes)
            )

    def close(self) -> None:
        """Stop the worker; queued-but-unserved requests fail cleanly."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._queue.put(_SHUTDOWN)
        self._worker.join(timeout=5.0)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._drain_after_shutdown()
                return
            batch = [item]
            deadline = time.monotonic() + self.max_wait_ms / 1000.0
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                try:
                    nxt = self._queue.get(
                        timeout=remaining if remaining > 0 else None,
                        block=remaining > 0,
                    )
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    self._queue.put(_SHUTDOWN)  # handle after this batch
                    break
                batch.append(nxt)
            self._execute(batch)

    def _execute(self, batch: list[_Pending]) -> None:
        queries = [p.query for p in batch]
        rngs = [p.rng for p in batch]
        with self._stats_lock:
            self._stats.batches += 1
            self._stats.requests += len(batch)
            self._stats.largest_batch = max(self._stats.largest_batch, len(batch))
        try:
            results = self.run_batch(
                queries, None if any(r is None for r in rngs) else rngs
            )
            # Wire boundary for precision tiers: a float32 estimator's
            # selectivities widen exactly here (value-preserving — every
            # float32 is a float64), so callers, the cache, and the HTTP
            # layer always speak doubles regardless of the plan dtype.
            values = [float(v) for v in np.asarray(results, dtype=np.float64)]
            if len(values) != len(batch):
                raise ServeError(
                    f"run_batch returned {len(values)} results for {len(batch)} queries"
                )
        except BaseException as exc:  # propagate to every waiter
            for p in batch:
                p.error = exc
                p.done.set()
            return
        for p, value in zip(batch, values):
            p.result = value
            p.done.set()

    def _drain_after_shutdown(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _SHUTDOWN:
                continue
            item.error = ServeError(f"batcher {self.name!r} closed while request queued")
            item.done.set()
