"""The estimation service: model registry, caching, batching, fallback.

:class:`EstimationService` turns fitted estimators into a long-lived,
thread-safe facility: requests name a model and carry a
:class:`~repro.query.query.Query`; the service answers from the result
cache, or coalesces the call into a shared micro-batch, or — when a
deadline is configured and missed — degrades to a cheap fallback
estimator and says so in the response.

Determinism contract
--------------------
With ``deterministic=True`` (default) every query's progressive-sampling
draws come from a generator seeded by ``hash(model name, cache key)``, so
a served selectivity is a pure function of (model, query): bitwise-equal
whether it was computed alone, inside any micro-batch, by any thread, or
replayed from the cache. :meth:`EstimationService.estimate_sequential`
exposes the same pure path without cache or batcher for verification.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ConfigError, EstimateTimeoutError, ServeError, UnknownModelError
from repro.estimators.base import Estimator
from repro.estimators.registry import build_estimator
from repro.query.query import Query
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import QueryCache
from repro.serve.telemetry import Telemetry
from repro.utils.rng import ensure_rng, query_seed

__all__ = [
    "EstimateResult",
    "EstimationService",
    "ServeConfig",
    "ServedModel",
    "query_seed",  # canonical home is repro.utils.rng; re-exported for callers
]


@dataclass
class ServeConfig:
    """Knobs of the serving layer (see docs/serving.md)."""

    cache_entries: int = 4096
    cache_ttl_seconds: float | None = None
    max_batch_size: int = 16
    max_wait_ms: float = 2.0
    timeout_ms: float | None = None
    fallback_estimator: str | None = "sampling"
    deterministic: bool = True
    telemetry_window: int = 2048

    def __post_init__(self) -> None:
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ConfigError("timeout_ms must be positive (or None)")


@dataclass
class EstimateResult:
    """One served answer, with enough provenance to debug it."""

    model: str
    selectivity: float
    cardinality: float
    source: str  # 'cache' | 'batch' | 'fallback'
    degraded: bool
    latency_ms: float

    def as_dict(self) -> dict:
        return {
            "model": self.model,
            "selectivity": self.selectivity,
            "cardinality": self.cardinality,
            "source": self.source,
            "degraded": self.degraded,
            "latency_ms": round(self.latency_ms, 3),
        }


class ServedModel:
    """A named estimator plus its lock, batcher, and fallback."""

    def __init__(
        self,
        name: str,
        estimator: Estimator,
        config: ServeConfig,
        fallback: Estimator | None = None,
        source_path: str | None = None,
        telemetry: Telemetry | None = None,
        precision: str | None = None,
    ):
        self.name = name
        self.estimator = estimator
        self.fallback = fallback
        self.source_path = source_path
        # Requested precision tier (None = the estimator's own config);
        # re-applied to every fresh estimator a hot reload swaps in.
        self.precision = precision
        self.source_mtime = _mtime(source_path)
        self.version = 0
        self.lock = threading.RLock()
        # Compiled-plan snapshot (read-only, safe to share across
        # threads); refreshed whenever the estimator is swapped.
        self.plan = _runtime_plan_of(estimator)
        # Service-wide telemetry sink for per-batch counters (None in
        # standalone uses); deltas are computed against the monotone
        # prefix-cache counters of the plan generation in `_prefix_plan`
        # (hot reload swaps in a fresh cache, resetting the baseline).
        self.telemetry = telemetry
        self._prefix_plan = self.plan
        self._prefix_baseline: dict[str, int] = {}
        self.batcher = MicroBatcher(
            self._run_batch,
            max_batch_size=config.max_batch_size,
            max_wait_ms=config.max_wait_ms,
            name=name,
        )

    def _run_batch(self, queries, rngs):
        with self.lock:
            results = self.estimator.estimate_batch(queries, rngs=rngs)
            groups = _batch_groups_of(self.estimator)
            prefix_deltas = self._prefix_cache_deltas(self.plan)
        # Stats flow out *after* the model lock is released: the batcher
        # and telemetry have their own locks, and nesting them under the
        # model lock would add avoidable edges to the lock-order graph.
        if groups:
            self.batcher.note_groups(groups)
        if self.telemetry is not None:
            if groups:
                self.telemetry.increment("batch.grouped", 1)
                self.telemetry.increment("batch.groups", len(groups))
                self.telemetry.increment("batch.grouped_requests", sum(groups))
            for counter, delta in (prefix_deltas or {}).items():
                if delta:
                    self.telemetry.increment(f"prefix_cache.{counter}", delta)
        return results

    def _prefix_cache_deltas(self, plan) -> dict[str, int] | None:
        """Per-batch increments of ``plan``'s prefix-cache counters.

        Called under ``self.lock`` with the current plan snapshot (the
        baseline is lock-guarded state). Returns None when the model
        runs uncompiled.
        """
        cache = getattr(plan, "prefix_cache", None)
        if cache is None:
            return None
        if plan is not self._prefix_plan:  # hot reload: fresh cache
            self._prefix_plan = plan
            self._prefix_baseline = {}
        stats = cache.stats()
        deltas = {}
        for counter in ("hits", "misses", "evictions"):
            deltas[counter] = stats[counter] - self._prefix_baseline.get(counter, 0)
            self._prefix_baseline[counter] = stats[counter]
        return deltas

    @property
    def num_rows(self) -> int:
        with self.lock:
            return self.estimator.table.num_rows

    def current_version(self) -> int:
        """The reload generation, read under the model lock."""
        with self.lock:
            return self.version

    def describe(self) -> dict:
        # Snapshot the swappable state under the lock, then build the
        # payload (and query the batcher, which has its own lock) outside.
        with self.lock:
            estimator = self.estimator
            plan = self.plan
            version = self.version
        stats = self.batcher.stats()
        prefix_cache = getattr(plan, "prefix_cache", None)
        return {
            "name": self.name,
            "estimator": type(estimator).__name__,
            "kind": getattr(estimator, "name", "unknown"),
            "rows": estimator.table.num_rows,
            "version": version,
            "compiled": plan is not None,
            "plan_fingerprint": None if plan is None else plan.fingerprint,
            "plan_dtype": None if plan is None else str(plan.dtype),
            "plan_nbytes": None if plan is None else plan.nbytes(),
            "source_path": self.source_path,
            "fallback": getattr(self.fallback, "name", None),
            "batches": stats.batches,
            "batched_requests": stats.requests,
            "largest_batch": stats.largest_batch,
            "mean_batch_size": round(stats.mean_batch_size, 2),
            "groups_per_batch": round(stats.groups_per_batch, 2),
            "mean_group_size": round(stats.mean_group_size, 2),
            "largest_group": stats.largest_group,
            "prefix_cache": None if prefix_cache is None else prefix_cache.stats(),
        }


def _runtime_plan_of(estimator) -> object | None:
    """estimator.runtime_plan(), tolerating duck-typed estimators
    (tests and plugins) that predate the Estimator base method."""
    getter = getattr(estimator, "runtime_plan", None)
    return getter() if callable(getter) else None


def _apply_precision(estimator, precision: str | None) -> None:
    """Pin ``estimator`` to a compiled-plan precision tier.

    ``None`` leaves the estimator at its own configured tier.  An
    estimator without :meth:`set_precision` (duck-typed test doubles,
    non-AR estimators) cannot honour the knob, so asking for one is a
    configuration error, not a silent no-op.
    """
    if precision is None:
        return
    setter = getattr(estimator, "set_precision", None)
    if not callable(setter):
        raise ConfigError(
            f"estimator {type(estimator).__name__} does not support "
            f"precision tiers (requested {precision!r})"
        )
    setter(precision)


def _batch_groups_of(estimator) -> list[int] | None:
    """estimator.batch_group_sizes(), tolerating duck-typed estimators."""
    getter = getattr(estimator, "batch_group_sizes", None)
    return getter() if callable(getter) else None


def _mtime(path: str | None) -> float | None:
    if path is None:
        return None
    try:
        return os.path.getmtime(path)
    except OSError:
        return None


class EstimationService:
    """Routes (model, query) requests through cache, batcher, fallback."""

    def __init__(self, config: ServeConfig | None = None, telemetry: Telemetry | None = None):
        self.config = config or ServeConfig()
        self.telemetry = telemetry or Telemetry(window=self.config.telemetry_window)
        self.cache = QueryCache(
            max_entries=self.config.cache_entries,
            ttl_seconds=self.config.cache_ttl_seconds,
        )
        self._models: dict[str, ServedModel] = {}
        self._registry_lock = threading.Lock()
        self.started_at = time.time()

    # ------------------------------------------------------------------
    # Model registry
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        estimator: Estimator,
        fallback: Estimator | str | None = None,
        source_path: str | None = None,
        precision: str | None = None,
    ) -> ServedModel:
        """Serve a fitted estimator under ``name`` (replacing any holder).

        ``fallback`` is the degraded-mode estimator: a fitted
        :class:`Estimator`, a registry name to fit on the model's table
        now, or ``None`` to use ``config.fallback_estimator`` (pass the
        empty string to disable fallback for this model).

        ``precision`` ('float64' | 'float32') pins this model's
        compiled-plan tier: applied to the estimator now and re-applied
        to every fresh estimator a hot :meth:`reload` swaps in, so a
        model keeps its tier across weight updates.  ``None`` serves the
        estimator at whatever tier it already carries.
        """
        estimator.table  # raises NotFittedError early on unfitted models
        _apply_precision(estimator, precision)
        resolved = self._resolve_fallback(estimator, fallback)
        model = ServedModel(
            name,
            estimator,
            self.config,
            fallback=resolved,
            source_path=source_path,
            telemetry=self.telemetry,
            precision=precision,
        )
        with self._registry_lock:
            previous = self._models.get(name)
            self._models[name] = model
        if previous is not None:
            previous.batcher.close()
        self.telemetry.increment("models.registered")
        return model

    def load_model(
        self, name: str, path: str, table, fallback=None, precision: str | None = None
    ) -> ServedModel:
        """Load a ``save_iam`` archive and serve it under ``name``.

        ``table`` rebinds inference exactly as
        :func:`repro.core.persistence.load_iam` requires; the archive
        path is remembered so :meth:`reload` can hot-swap new weights.
        ``precision`` pins the plan tier as in :meth:`register`.
        """
        return self.register(
            name, _estimator_from_archive(path, table), fallback=fallback,
            source_path=path, precision=precision,
        )

    def reload(self, name: str, force: bool = False) -> bool:
        """Hot-reload ``name`` from its archive if the file changed.

        Returns True when new weights were swapped in. The swap happens
        under the per-model lock, so in-flight batches finish on the old
        weights and later ones see the new; the bumped version keys the
        cache, so stale entries can never answer for the new model. The
        old compiled plan is invalidated with the same swap — the fresh
        estimator arrives with its own plan compiled from the new
        weights, so no thread can mix old-plan logits with new state.
        """
        model = self._require_model(name)
        if model.source_path is None:
            raise ServeError(f"model {name!r} was not loaded from an archive")
        current = _mtime(model.source_path)
        # Snapshot under the lock; the (slow) archive load runs outside
        # it so in-flight estimates keep draining on the old weights.
        with model.lock:
            last_mtime = model.source_mtime
            table = model.estimator.table
        if not force and current is not None and current == last_mtime:
            return False
        fresh = _estimator_from_archive(model.source_path, table)
        # Re-apply the pinned tier before the swap (outside the lock —
        # recompiling the plan is the slow part), so readers atomically
        # go from old-tier plan to new-tier plan with nothing in between.
        _apply_precision(fresh, model.precision)
        with model.lock:
            model.estimator = fresh
            model.plan = _runtime_plan_of(fresh)
            model.source_mtime = current
            model.version += 1
        self.cache.invalidate(lambda key: key[0] == name)
        self.telemetry.increment("models.reloaded")
        return True

    def unregister(self, name: str) -> None:
        with self._registry_lock:
            model = self._models.pop(name, None)
        if model is None:
            raise UnknownModelError(f"no model named {name!r}")
        model.batcher.close()
        self.cache.invalidate(lambda key: key[0] == name)

    def models(self) -> list[dict]:
        with self._registry_lock:
            models = list(self._models.values())
        return [m.describe() for m in models]

    def model_names(self) -> list[str]:
        with self._registry_lock:
            return sorted(self._models)

    def _require_model(self, name: str) -> ServedModel:
        with self._registry_lock:
            model = self._models.get(name)
        if model is None:
            raise UnknownModelError(
                f"no model named {name!r}; registered: {self.model_names()}"
            )
        return model

    def _resolve_fallback(
        self, estimator: Estimator, fallback: Estimator | str | None
    ) -> Estimator | None:
        if isinstance(fallback, Estimator):
            return fallback
        name = self.config.fallback_estimator if fallback is None else fallback
        if not name:
            return None
        return build_estimator(name).fit(estimator.table)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(
        self, model_name: str, query: Query, timeout_ms: float | None = None
    ) -> EstimateResult:
        """Serve one query: cache, then micro-batch, then fallback."""
        start = time.perf_counter()
        model = self._require_model(model_name)
        key = (model_name, model.current_version(), query.cache_key())
        self.telemetry.increment("requests")
        self.telemetry.increment(f"requests.{model_name}")

        cached = self.cache.get(key)
        if cached is not None:
            self.telemetry.increment("cache.hits")
            return self._finish(model, cached, "cache", False, start)
        self.telemetry.increment("cache.misses")

        rng = None
        if self.config.deterministic:
            rng = ensure_rng(query_seed(model_name, key[2]))
        deadline_ms = self.config.timeout_ms if timeout_ms is None else timeout_ms
        try:
            selectivity = model.batcher.submit(
                query,
                rng=rng,
                timeout_seconds=None if deadline_ms is None else deadline_ms / 1000.0,
            )
        except EstimateTimeoutError:
            self.telemetry.increment("timeouts")
            if model.fallback is None:
                raise
            selectivity = float(model.fallback.estimate(query))
            self.telemetry.increment("degraded")
            return self._finish(model, selectivity, "fallback", True, start)
        except Exception:
            self.telemetry.increment("errors")
            raise
        self.cache.put(key, selectivity)
        return self._finish(model, selectivity, "batch", False, start)

    def estimate_sequential(self, model_name: str, query: Query) -> float:
        """The reference path: no cache, no batcher, same determinism.

        With ``deterministic=True`` this equals :meth:`estimate`'s
        selectivity bitwise for the same (model, query) — the invariant
        the concurrency tests and ``--selftest`` assert.
        """
        model = self._require_model(model_name)
        rngs = None
        if self.config.deterministic:
            rngs = [ensure_rng(query_seed(model_name, query.cache_key()))]
        with model.lock:
            return float(model.estimator.estimate_batch([query], rngs=rngs)[0])

    def _finish(
        self, model: ServedModel, selectivity: float, source: str, degraded: bool, start: float
    ) -> EstimateResult:
        latency_ms = (time.perf_counter() - start) * 1000.0
        self.telemetry.observe_ms("estimate", latency_ms)
        self.telemetry.observe_ms(f"estimate.{model.name}", latency_ms)
        return EstimateResult(
            model=model.name,
            selectivity=float(selectivity),
            cardinality=float(selectivity) * model.num_rows,
            source=source,
            degraded=degraded,
            latency_ms=latency_ms,
        )

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """JSON-ready health/telemetry snapshot for ``/metrics``."""
        return {
            "uptime_seconds": round(time.time() - self.started_at, 1),
            "models": self.models(),
            "cache": self.cache.stats().as_dict(),
            "telemetry": self.telemetry.snapshot(),
        }

    def close(self) -> None:
        with self._registry_lock:
            models = list(self._models.values())
            self._models.clear()
        for model in models:
            model.batcher.close()


def _estimator_from_archive(path: str, table) -> Estimator:
    """load_iam + wrap in the Estimator interface the service speaks."""
    from repro.core.persistence import load_iam
    from repro.estimators.iam import IAMEstimator

    core_model = load_iam(path, table)
    estimator = IAMEstimator(config=core_model.config)
    estimator.model = core_model
    estimator._table = table
    return estimator
