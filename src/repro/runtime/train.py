"""Compiled training steps: cached tapes, fused kernels, pooled buffers.

``repro.runtime.plan`` compiled the *inference* half of the split; this
module gives the Equation-6 training loop the same treatment. The eager
path re-records the autodiff graph every mini-batch — hundreds of Tensor
nodes, a topological sort, and a fresh allocation for every forward value
and gradient. The graph *structure* is fixed per (batch size, loss
config), so a :class:`TrainStepExecutor` captures it once as a pair of
straight-line numpy programs (forward + hand-derived backward) bound to
pooled buffers, and replays them every step:

- **Tape caching** — one :class:`CompiledMADELoss` /
  :class:`CompiledGMMLoss` per batch size, built lazily on the first
  batch of that size (the final partial batch of an epoch gets its own
  program) and reused for the rest of training.
- **Buffer arena** — every forward activation, gradient, and scratch
  array comes from an :class:`Arena` keyed by ``(tag, shape, dtype)``.
  Steady-state steps perform no large allocations; the arena's
  ``allocations`` counter is the test hook for that contract.
- **Fused kernels** — linear + bias + ReLU run in one buffer (the ReLU
  mask is recovered from the post-activation sign, so pre-activations
  are never stored); log-softmax / cross-entropy share one pass per
  column; the per-column GMM NLL loop becomes one stacked ``(C, B, K)``
  evaluation per component-count group.
- **In-place optimizer coupling** — parameter gradients are written into
  stable pooled buffers bound to ``param.grad``; ``nn.optim`` updates
  ``param.data`` in place, so the programs read parameters live through
  ``Parameter.data`` and nothing ever goes stale (``load_state_dict``
  swaps are picked up because only ``.data`` attribute reads are bound,
  never the arrays themselves).

Numerics contract
-----------------
The compiled programs replay the *same numpy operations in the same
order on identically-laid-out arrays* as the eager autodiff path, and
every hand-derived backward mirrors the corresponding closure in
``repro.autodiff`` op for op. Gradient accumulation orders that differ
are two-term float additions (commutative, hence exact). A seeded
compiled run therefore reproduces eager per-epoch losses and final
parameters **bitwise**; eager mode stays available as the correctness
oracle (``train_backend='eager'``), and ``repro.bench training`` gates
the equivalence the same way ``BENCH_inference.json`` gates inference.

Unsupported model structures raise :class:`~repro.errors.CompileError`
at executor construction; trainers catch it and fall back to eager.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import CompileError

_LOG_2PI = math.log(2.0 * math.pi)

__all__ = [
    "Arena",
    "CompiledGMMLoss",
    "CompiledMADELoss",
    "TrainStepExecutor",
]


class Arena:
    """A keyed pool of reusable numpy buffers.

    Buffers are requested at *compile* time with ``get(tag, shape)`` and
    live for the arena's lifetime, so a compiled step that only touches
    arena buffers allocates nothing. ``requests`` counts every ``get``;
    ``allocations`` counts the ones that actually created an array —
    once training reaches steady state the latter stops moving, which is
    exactly what the contract tests assert.
    """

    __slots__ = ("_buffers", "requests", "allocations")

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}
        self.requests = 0
        self.allocations = 0

    def get(self, tag: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        key = (tag, tuple(int(s) for s in shape), np.dtype(dtype).str)
        self.requests += 1
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(key[1], dtype=dtype)
            self._buffers[key] = buf
            self.allocations += 1
        return buf

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)


class _GradTable:
    """Stable parameter -> pooled gradient buffer mapping.

    One buffer per parameter, shared by every compiled program in the
    executor (programs for different batch sizes write the same buffers).
    ``bind`` points ``param.grad`` at the pooled buffer so
    ``clip_grad_norm`` and the in-place optimizers operate directly on
    what the compiled backward wrote.
    """

    def __init__(self, arena: Arena) -> None:
        self._arena = arena
        self._entries: list[tuple[object, np.ndarray]] = []
        self._by_id: dict[int, np.ndarray] = {}

    def buf(self, param) -> np.ndarray:
        found = self._by_id.get(id(param))
        if found is None:
            found = self._arena.get(f"grad{len(self._entries)}", param.data.shape)
            self._by_id[id(param)] = found
            self._entries.append((param, found))
        return found

    def prebind(self, param, buf: np.ndarray) -> None:
        """Route ``param``'s compiled gradient writes into a caller buffer.

        Data-parallel workers pre-bind shared-memory slices here so the
        backward programs write shard gradients straight into the arena
        the coordinator reduces from — no copy, no pickling.  Must run
        before the first program compiles against ``param``.
        """
        if id(param) in self._by_id:
            raise CompileError("gradient buffer already bound for parameter")
        if buf.shape != param.data.shape or buf.dtype != param.data.dtype:
            raise CompileError(
                f"external gradient buffer mismatch: {buf.shape}/{buf.dtype} "
                f"vs parameter {param.data.shape}/{param.data.dtype}"
            )
        self._by_id[id(param)] = buf
        self._entries.append((param, buf))

    @staticmethod
    def bind(param_bufs: list[tuple[object, np.ndarray]]) -> None:
        for param, buf in param_bufs:
            param.grad = buf


def _guard_nonfinite_max(m: np.ndarray, fin: np.ndarray) -> None:
    """In-place replica of ``np.where(np.isfinite(m), m, 0.0)``."""
    np.isfinite(m, out=fin)
    np.logical_not(fin, out=fin)
    np.copyto(m, 0.0, where=fin)


def _supported_made(model) -> None:
    """Raise :class:`CompileError` unless ``model`` is a standard MADE."""
    from repro.ar.made import MADE

    if not isinstance(model, MADE):
        raise CompileError(
            f"compiled training supports MADE models, got {type(model).__name__}"
        )
    layers = [model.output_layer]
    if model.residual:
        layers.append(model.input_layer)
        for block in model.blocks:
            layers.extend([block.linear1, block.linear2])
    else:
        layers.extend(model.hidden_layers)
    for layer in layers:
        if layer.bias is None:
            raise CompileError("compiled training requires bias-enabled layers")


class CompiledMADELoss:
    """Fused forward/backward of the summed ``log_likelihood(tokens, mask)``.

    One instance per (model, batch size). ``run`` loads the batch,
    executes the forward program, and immediately runs the hand-derived
    backward, writing parameter gradients into the pooled buffers. The
    return value is the RAW log-likelihood sum; the executor applies the
    ``-(sum * (1.0 / denom))`` scaling so the per-batch loss stays
    bitwise equal to the eager ``loss.item()``.  ``denom`` defaults to
    the batch size; data-parallel shards pass the GLOBAL batch size so
    per-row gradient contributions carry the full-batch ``1/B`` scale
    and the coordinator's rank-ordered shard sum reconstructs the
    full-batch gradient.
    """

    def __init__(self, model, batch: int, arena: Arena, grads: _GradTable):
        _supported_made(model)
        self.model = model
        self.batch = int(batch)
        self.arena = arena
        a = arena.get
        B = self.batch
        C = model.n_columns
        E = sum(model.embed_widths)
        V = sum(model.vocab_sizes)

        # Input slots and embedding layout.
        self._in_tok = a("ar.tok", (B, C), np.int64)
        self._wild_row = model.wildcard_ids[None, :].copy()
        self._x = a("ar.x", (B, E))
        self._embed_slices = []
        start = 0
        for width in model.embed_widths:
            self._embed_slices.append(slice(start, start + width))
            start += width

        # Trunk buffers.
        if model.residual:
            W = model.input_layer.out_features
            self._mw_in = a("ar.mwin", model.input_layer.weight.data.shape)
            self._h = a("ar.h", (B, W))
            self._f = a("ar.f", (B, W))
            self._a2 = a("ar.a2", (B, W))
            self._r0 = [a(f"ar.r0{i}", (B, W)) for i in range(len(model.blocks))]
            self._r1 = [a(f"ar.r1{i}", (B, W)) for i in range(len(model.blocks))]
            self._mw1 = [
                a(f"ar.mw1{i}", blk.linear1.weight.data.shape)
                for i, blk in enumerate(model.blocks)
            ]
            self._mw2 = [
                a(f"ar.mw2{i}", blk.linear2.weight.data.shape)
                for i, blk in enumerate(model.blocks)
            ]
            self._gh = a("ar.gh", (B, W))
            self._gt = a("ar.gt", (B, W))
            self._gt2 = a("ar.gt2", (B, W))
            self._relu_mask = a(f"ar.relu{W}", (B, W), bool)
            self._gx = a("ar.gx", (B, E))
            last_width = W
        else:
            widths = [E] + [layer.out_features for layer in model.hidden_layers]
            self._mw = [
                a(f"ar.mw{i}", layer.weight.data.shape)
                for i, layer in enumerate(model.hidden_layers)
            ]
            self._hs = [a(f"ar.h{i}", (B, w)) for i, w in enumerate(widths[1:])]
            # Per-layer gradient buffers, sized by each layer's *input*.
            self._ghs = [a(f"ar.gh{i}", (B, w)) for i, w in enumerate(widths[:-1])]
            self._relu_masks = [a(f"ar.relu{w}", (B, w), bool) for w in widths[1:]]
            last_width = widths[-1]

        # Output head and per-column cross-entropy buffers.
        self._mw_out = a("ar.mwout", model.output_layer.weight.data.shape)
        self._out = a("ar.out", (B, V))
        self._out_views = [self._out[:, s] for s in model._output_slices]
        self._gf = a("ar.gf", (B, last_width))
        self._lp = [a(f"ar.lp{k}", (B, v)) for k, v in enumerate(model.vocab_sizes)]
        self._glp = [a(f"ar.glp{k}", (B, v)) for k, v in enumerate(model.vocab_sizes)]
        self._row_off = []
        for k, v in enumerate(model.vocab_sizes):
            off = a(f"ar.ro{k}", (B,), np.int64)
            np.multiply(np.arange(B, dtype=np.int64), v, out=off)
            self._row_off.append(off)
        self._fidx = a("ar.fidx", (B,), np.int64)
        self._m = a("ar.colm", (B, 1))
        self._fin = a("ar.colfin", (B, 1), bool)
        self._lse = a("ar.collse", (B, 1))
        self._rs = a("ar.colrs", (B, 1))
        self._picked = a("ar.picked", (B,))
        self._tot = a("ar.tot", (B,))
        self._gfill = a("ar.gfill", (B, 1))

        self.param_bufs = [(p, grads.buf(p)) for p in model.parameters()]
        self._grad_of = {id(p): buf for p, buf in self.param_bufs}

    # ------------------------------------------------------------------
    def run(self, tokens: np.ndarray, wildcard_mask: np.ndarray | None,
            denom: int | None = None):
        """Forward + backward for one batch; returns the raw LL sum.

        ``denom`` is the gradient-normalising batch size (defaults to
        this program's batch; shards pass the global one).
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        model = self.model
        self._gfill.fill(-(1.0 / (self.batch if denom is None else denom)))

        # Wildcard-applied input ids (targets stay unmasked).
        np.copyto(self._in_tok, tokens)
        if wildcard_mask is not None:
            np.copyto(self._in_tok, self._wild_row, where=wildcard_mask)

        # Embedding gather straight into the concatenated input buffer.
        for k, emb in enumerate(model.embeddings):
            np.take(
                emb.weight.data, self._in_tok[:, k], axis=0,
                out=self._x[:, self._embed_slices[k]],
            )

        f = self._forward_trunk()
        np.matmul(f, self._fold(model.output_layer, self._mw_out), out=self._out)
        self._out += model.output_layer.bias.data

        loss = self._forward_loss(tokens)
        self._backward(tokens, f)
        return loss

    @staticmethod
    def _fold(layer, buf: np.ndarray) -> np.ndarray:
        """``weight * mask`` into a pooled buffer (refreshed every step)."""
        np.multiply(layer.weight.data, layer.mask, out=buf)
        return buf

    def _forward_trunk(self) -> np.ndarray:
        model = self.model
        if not model.residual:
            act = self._x
            for i, layer in enumerate(model.hidden_layers):
                h = self._hs[i]
                np.matmul(act, self._fold(layer, self._mw[i]), out=h)
                h += layer.bias.data
                np.maximum(h, 0.0, out=h)
                act = h
            return act
        h = self._h
        np.matmul(self._x, self._fold(model.input_layer, self._mw_in), out=h)
        h += model.input_layer.bias.data
        for i, block in enumerate(model.blocks):
            r0, r1 = self._r0[i], self._r1[i]
            np.maximum(h, 0.0, out=r0)
            np.matmul(r0, self._fold(block.linear1, self._mw1[i]), out=r1)
            r1 += block.linear1.bias.data
            np.maximum(r1, 0.0, out=r1)
            np.matmul(r1, self._fold(block.linear2, self._mw2[i]), out=self._a2)
            self._a2 += block.linear2.bias.data
            h += self._a2
        np.maximum(h, 0.0, out=self._f)
        return self._f

    def _forward_loss(self, tokens: np.ndarray):
        """Per-column fused log-softmax / gather; leaves softmax in _lp."""
        for k in range(self.model.n_columns):
            block = self._out_views[k]
            lp, scratch = self._lp[k], self._glp[k]
            np.max(block, axis=-1, keepdims=True, out=self._m)
            _guard_nonfinite_max(self._m, self._fin)
            np.subtract(block, self._m, out=lp)
            np.exp(lp, out=scratch)
            np.sum(scratch, axis=-1, keepdims=True, out=self._lse)
            np.log(self._lse, out=self._lse)
            np.subtract(lp, self._lse, out=lp)
            np.add(self._row_off[k], tokens[:, k], out=self._fidx)
            dest = self._tot if k == 0 else self._picked
            np.take(lp.reshape(-1), self._fidx, out=dest)
            if k > 0:
                self._tot += self._picked
            np.exp(lp, out=lp)  # softmax, kept for backward
        return self._tot.sum()

    def _backward(self, tokens: np.ndarray, f: np.ndarray) -> None:
        model = self.model
        # d loss / d logits, column by column, written into disjoint
        # slices of the (reused) output buffer.
        for k in range(model.n_columns):
            soft, glp = self._lp[k], self._glp[k]
            glp.fill(0.0)
            np.put_along_axis(glp, tokens[:, k : k + 1], self._gfill, axis=-1)
            np.sum(glp, axis=-1, keepdims=True, out=self._rs)
            np.multiply(soft, self._rs, out=soft)
            np.subtract(glp, soft, out=glp)
            np.copyto(self._out_views[k], glp)

        out_layer = model.output_layer
        np.sum(self._out, axis=0, out=self._grad_of[id(out_layer.bias)])
        wbuf = self._grad_of[id(out_layer.weight)]
        np.matmul(f.T, self._out, out=wbuf)
        np.multiply(wbuf, out_layer.mask, out=wbuf)
        np.matmul(self._out, self._mw_out.T, out=self._gf)

        gx = self._backward_trunk()

        for k, emb in enumerate(model.embeddings):
            ebuf = self._grad_of[id(emb.weight)]
            ebuf.fill(0.0)
            np.add.at(ebuf, self._in_tok[:, k], gx[:, self._embed_slices[k]])

    def _linear_grads(self, layer, act: np.ndarray, g: np.ndarray) -> None:
        np.sum(g, axis=0, out=self._grad_of[id(layer.bias)])
        wbuf = self._grad_of[id(layer.weight)]
        np.matmul(act.T, g, out=wbuf)
        np.multiply(wbuf, layer.mask, out=wbuf)

    def _backward_trunk(self) -> np.ndarray:
        model = self.model
        if not model.residual:
            g = self._gf
            for i in reversed(range(len(model.hidden_layers))):
                layer = model.hidden_layers[i]
                mask = self._relu_masks[i]
                np.greater(self._hs[i], 0.0, out=mask)
                np.multiply(g, mask, out=g)
                act = self._hs[i - 1] if i > 0 else self._x
                self._linear_grads(layer, act, g)
                np.matmul(g, self._mw[i].T, out=self._ghs[i])
                g = self._ghs[i]
            return g

        gh, relu = self._gh, self._relu_mask
        np.greater(self._f, 0.0, out=relu)
        np.multiply(self._gf, relu, out=gh)
        for i in reversed(range(len(model.blocks))):
            block = model.blocks[i]
            r0, r1 = self._r0[i], self._r1[i]
            self._linear_grads(block.linear2, r1, gh)
            np.matmul(gh, self._mw2[i].T, out=self._gt)
            np.greater(r1, 0.0, out=relu)
            np.multiply(self._gt, relu, out=self._gt)
            self._linear_grads(block.linear1, r0, self._gt)
            np.matmul(self._gt, self._mw1[i].T, out=self._gt2)
            np.greater(r0, 0.0, out=relu)
            np.multiply(self._gt2, relu, out=self._gt2)
            gh += self._gt2
        self._linear_grads(model.input_layer, self._x, gh)
        np.matmul(gh, self._mw_in.T, out=self._gx)
        return self._gx


class CompiledGMMLoss:
    """Stacked Equation-4 NLL over every GMM column, forward + backward.

    Columns sharing a component count K are evaluated as one ``(C, B, K)``
    computation (elementwise ops and the K-axis reductions vectorize
    exactly); batch-axis reductions run per column on contiguous slices so
    they are bitwise-identical to the eager per-column path. Parameters
    are re-stacked from the live modules each step (they change under the
    optimizer), which costs O(C·K) — negligible next to the (C,B,K) math.
    """

    def __init__(self, modules: dict, batch: int, arena: Arena, grads: _GradTable):
        self.batch = int(batch)
        B = self.batch
        groups: dict[int, list[tuple[int, object]]] = {}
        for column, module in modules.items():
            groups.setdefault(int(module.n_components), []).append((column, module))
        self._groups = []
        for gi, (K, entries) in enumerate(groups.items()):
            C = len(entries)
            a = arena.get
            t = f"gmm{gi}"
            bufs = {
                "Z": a(f"{t}.z", (C, B, 1)),
                "LG": a(f"{t}.lg", (C, 1, K)),
                "MU": a(f"{t}.mu", (C, 1, K)),
                "LS": a(f"{t}.ls", (C, 1, K)),
                "LW": a(f"{t}.lw", (C, 1, K)),
                "SOFTW": a(f"{t}.softw", (C, 1, K)),
                "NLS": a(f"{t}.nls", (C, 1, K)),
                "T1": a(f"{t}.t1", (C, 1, K)),
                "INV": a(f"{t}.inv", (C, 1, K)),
                "MW": a(f"{t}.mw", (C, 1, 1)),
                "FIN1": a(f"{t}.fin1", (C, 1, 1), bool),
                "LSE": a(f"{t}.lse", (C, 1, 1)),
                "D": a(f"{t}.d", (C, B, K)),
                "D2": a(f"{t}.d2", (C, B, K)),
                "Q": a(f"{t}.q", (C, B, K)),
                "M2": a(f"{t}.m2", (C, B, 1)),
                "FIN2": a(f"{t}.fin2", (C, B, 1), bool),
                "SH": a(f"{t}.sh", (C, B, K)),
                "TOT": a(f"{t}.tot", (C, B, 1)),
                "TOTG": a(f"{t}.totg", (C, B, 1)),
                "POS": a(f"{t}.pos", (C, B, 1), bool),
                "LP": a(f"{t}.lp", (C, B, 1)),
                "GT1": a(f"{t}.gt1", (C, 1, K)),
                "GS": a(f"{t}.gs", (C, 1, 1)),
                "GA": a(f"{t}.ga", (C, 1, K)),
                "GIV": a(f"{t}.giv", (C, 1, K)),
                "G1K": a(f"{t}.g1k", (C, 1, K)),
            }
            self._groups.append((entries, bufs))
        self.param_bufs = [
            (p, grads.buf(p)) for m in modules.values() for p in m.parameters()
        ]

    # ------------------------------------------------------------------
    def run(self, raw_columns: dict, rows: np.ndarray,
            denom: int | None = None) -> dict:
        """Forward + backward; returns ``{column: raw log-prob sum}``.

        The executor applies the ``-(sum * (1.0 / denom))`` NLL scaling;
        ``denom`` (default: this program's batch) normalises the
        gradients — shards pass the global batch size so shard-gradient
        sums reconstruct the full-batch gradient.
        """
        scale = self.batch if denom is None else denom
        terms: dict[int, object] = {}
        for entries, bufs in self._groups:
            self._load(entries, bufs, raw_columns, rows)
            self._forward(entries, bufs, terms)
            self._backward(entries, bufs, scale)
        return terms

    def _load(self, entries, bufs, raw_columns, rows) -> None:
        for i, (column, module) in enumerate(entries):
            np.copyto(bufs["LG"][i, 0], module.logits.data)
            np.copyto(bufs["MU"][i, 0], module.means.data)
            np.copyto(bufs["LS"][i, 0], module.log_stds.data)
            values = np.asarray(raw_columns[column][rows], dtype=np.float64)
            z = bufs["Z"][i, :, 0]
            np.subtract(values, module.loc, out=z)
            np.divide(z, module.scale, out=z)

    def _forward(self, entries, bufs, terms) -> None:
        LG, LW, SOFTW = bufs["LG"], bufs["LW"], bufs["SOFTW"]
        with np.errstate(divide="ignore", invalid="ignore"):
            # log_w = log_softmax(logits); softmax kept for backward.
            np.max(LG, axis=-1, keepdims=True, out=bufs["MW"])
            _guard_nonfinite_max(bufs["MW"], bufs["FIN1"])
            np.subtract(LG, bufs["MW"], out=LW)
            np.exp(LW, out=SOFTW)
            np.sum(SOFTW, axis=-1, keepdims=True, out=bufs["LSE"])
            np.log(bufs["LSE"], out=bufs["LSE"])
            np.subtract(LW, bufs["LSE"], out=LW)
            np.exp(LW, out=SOFTW)
            # component log-joint: log_w - log_std - (quad + log 2π)/2
            np.multiply(bufs["LS"], -1.0, out=bufs["NLS"])
            np.add(LW, bufs["NLS"], out=bufs["T1"])
            np.multiply(bufs["LS"], -2.0, out=bufs["INV"])
            np.exp(bufs["INV"], out=bufs["INV"])
            np.subtract(bufs["Z"], bufs["MU"], out=bufs["D"])
            np.power(bufs["D"], 2, out=bufs["D2"])
            np.multiply(bufs["D2"], bufs["INV"], out=bufs["Q"])
            np.add(bufs["Q"], _LOG_2PI, out=bufs["Q"])
            np.multiply(bufs["Q"], 0.5, out=bufs["Q"])
            np.subtract(bufs["T1"], bufs["Q"], out=bufs["Q"])  # log-joint
            # logsumexp over components; softmax kept for backward.
            np.max(bufs["Q"], axis=-1, keepdims=True, out=bufs["M2"])
            _guard_nonfinite_max(bufs["M2"], bufs["FIN2"])
            np.subtract(bufs["Q"], bufs["M2"], out=bufs["SH"])
            np.exp(bufs["SH"], out=bufs["SH"])
            np.sum(bufs["SH"], axis=-1, keepdims=True, out=bufs["TOT"])
            np.log(bufs["TOT"], out=bufs["LP"])
            np.add(bufs["LP"], bufs["M2"], out=bufs["LP"])
            np.greater(bufs["TOT"], 0.0, out=bufs["POS"])
            np.copyto(bufs["TOTG"], bufs["TOT"])
            np.logical_not(bufs["POS"], out=bufs["POS"])
            np.copyto(bufs["TOTG"], 1.0, where=bufs["POS"])
            np.divide(bufs["SH"], bufs["TOTG"], out=bufs["SH"])
            np.copyto(bufs["SH"], 0.0, where=bufs["POS"])
        for i, (column, _module) in enumerate(entries):
            terms[column] = bufs["LP"][i].sum()

    def _backward(self, entries, bufs, denom: int) -> None:
        G = bufs["SH"]  # softmax → gradient of the log-joint, in place
        np.multiply(G, -(1.0 / denom), out=G)
        GT1 = bufs["GT1"]
        for i in range(len(entries)):
            np.sum(G[i], axis=0, keepdims=True, out=GT1[i])
        # logits: log_softmax backward on the stacked (C,1,K) grads.
        np.sum(GT1, axis=-1, keepdims=True, out=bufs["GS"])
        np.multiply(bufs["SOFTW"], bufs["GS"], out=bufs["G1K"])
        np.subtract(GT1, bufs["G1K"], out=bufs["G1K"])
        # log_stds, contribution A: through the -log_std term.
        np.multiply(GT1, -1.0, out=bufs["GA"])
        # quad path: d(loss)/d(quad) = -0.5 · d(loss)/d(log-joint).
        np.multiply(G, -0.5, out=G)
        np.multiply(G, bufs["D2"], out=bufs["D2"])
        GIV = bufs["GIV"]
        for i in range(len(entries)):
            np.sum(bufs["D2"][i], axis=0, keepdims=True, out=GIV[i])
        np.multiply(G, bufs["INV"], out=G)
        np.multiply(G, 2.0, out=G)
        np.multiply(G, bufs["D"], out=G)  # d(loss)/d(z - mean)
        # log_stds, contribution B: through inv_var = exp(-2·log_std).
        np.multiply(GIV, bufs["INV"], out=GIV)
        np.multiply(GIV, -2.0, out=GIV)
        for i, (_column, module) in enumerate(entries):
            np.copyto(module.logits.grad, bufs["G1K"][i, 0])
            np.sum(G[i], axis=0, keepdims=True, out=bufs["G1K"][i])
            np.negative(bufs["G1K"][i, 0], out=module.means.grad)
            np.add(bufs["GA"][i, 0], GIV[i, 0], out=module.log_stds.grad)


class TrainStepExecutor:
    """Caches compiled loss programs per (batch size, loss config).

    The executor is the trainer-facing API: construct it once per
    training run with the live model / GMM modules, then call
    :meth:`loss_and_grads` per mini-batch. Programs compile lazily the
    first time a batch size appears (``compile_count`` exposes the tape
    cache's behaviour — e.g. exactly two compiles per loss config when
    the dataset size is not a multiple of the batch size) and are
    replayed thereafter; gradients land in pooled buffers bound to
    ``param.grad``, ready for ``clip_grad_norm`` + the in-place
    optimizer steps.
    """

    def __init__(self, *, model=None, gmm_modules=None, raw_columns=None, arena=None):
        self.arena = arena if arena is not None else Arena()
        self._grads = _GradTable(self.arena)
        self.model = model
        self.gmm_modules = dict(gmm_modules) if gmm_modules else {}
        self.raw_columns = raw_columns if raw_columns is not None else {}
        if model is not None:
            _supported_made(model)
        self._ar_cache: dict[int, CompiledMADELoss] = {}
        self._gmm_cache: dict[int, CompiledGMMLoss] = {}
        self.compile_count = 0

    # ------------------------------------------------------------------
    def bind_external_grads(self, param_buffers) -> None:
        """Pre-bind caller-owned gradient buffers (data-parallel workers).

        ``param_buffers`` is an iterable of ``(param, ndarray)`` pairs;
        every compiled backward then writes that parameter's gradient
        straight into the given buffer (typically a shared-memory slice)
        instead of an arena allocation.  Must be called before the first
        program compiles; raises :class:`CompileError` on shape/dtype
        mismatch or double binding.
        """
        for param, buf in param_buffers:
            self._grads.prebind(param, buf)

    def _gmm_program(self, batch: int) -> CompiledGMMLoss:
        program = self._gmm_cache.get(batch)
        if program is None:
            program = CompiledGMMLoss(
                self.gmm_modules, batch, self.arena, self._grads
            )
            self._gmm_cache[batch] = program
            self.compile_count += 1
        return program

    def _ar_program(self, batch: int) -> CompiledMADELoss:
        program = self._ar_cache.get(batch)
        if program is None:
            program = CompiledMADELoss(
                self.model, batch, self.arena, self._grads
            )
            self._ar_cache[batch] = program
            self.compile_count += 1
        return program

    def loss_and_grads(
        self,
        *,
        rows: np.ndarray | None = None,
        tokens: np.ndarray | None = None,
        wildcard_mask: np.ndarray | None = None,
        train_gmms: bool = False,
        train_ar: bool = False,
    ) -> float | None:
        """One compiled training step: loss value + gradients in ``.grad``.

        Term order matches the eager ``JointTrainer._batch_loss``: GMM
        NLL terms in module order, then the AR cross-entropy. Returns
        ``None`` when no loss term is active (mirroring eager).
        """
        loss = None
        if train_gmms and self.gmm_modules:
            program = self._gmm_program(len(rows))
            _GradTable.bind(program.param_bufs)
            sums = program.run(self.raw_columns, rows)
            for column in self.gmm_modules:
                term = -(sums[column] * (1.0 / len(rows)))
                loss = term if loss is None else loss + term
        if train_ar and self.model is not None:
            program = self._ar_program(len(tokens))
            _GradTable.bind(program.param_bufs)
            ar_loss = -(program.run(tokens, wildcard_mask) * (1.0 / len(tokens)))
            loss = ar_loss if loss is None else loss + ar_loss
        return None if loss is None else float(loss)

    def shard_sums(
        self,
        *,
        rows: np.ndarray | None = None,
        tokens: np.ndarray | None = None,
        wildcard_mask: np.ndarray | None = None,
        train_gmms: bool = False,
        train_ar: bool = False,
        denom: int,
    ) -> tuple[float | None, dict[int, float]]:
        """One data-parallel shard step: raw loss sums + shard gradients.

        Runs the same compiled programs as :meth:`loss_and_grads` over a
        row shard, but (a) scales gradients by ``1.0 / denom`` — the
        GLOBAL batch size — so rank-ordered shard sums reconstruct the
        full-batch gradient, and (b) returns the UNSCALED per-term
        sums (AR log-likelihood sum, per-column GMM log-prob sums) for
        the coordinator to reduce and normalise.  With one shard
        covering the whole batch this replays exactly the sequential
        programs, keeping the W=1 path bitwise-identical.
        """
        ar_sum: float | None = None
        gmm_sums: dict[int, float] = {}
        if train_gmms and self.gmm_modules:
            program = self._gmm_program(len(rows))
            _GradTable.bind(program.param_bufs)
            sums = program.run(self.raw_columns, rows, denom=denom)
            for column in self.gmm_modules:
                gmm_sums[column] = float(sums[column])
        if train_ar and self.model is not None:
            program = self._ar_program(len(tokens))
            _GradTable.bind(program.param_bufs)
            ar_sum = float(program.run(tokens, wildcard_mask, denom=denom))
        return ar_sum, gmm_sums
