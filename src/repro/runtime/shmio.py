"""Named shared-memory array segments: the one wire format, shared.

``repro.serve.cluster.shm`` introduced the layout for publishing
compiled MADEPlans to a worker pool: an 8-byte magic, an 8-byte
little-endian header length, a JSON header describing every array
(name / dtype / shape / offset), then the raw array bytes, each start
64-byte aligned.  Data-parallel training (``repro.runtime.parallel``)
needs exactly the same machinery for its immutable training inputs and
its gradient/parameter arenas, so the generic half lives here and both
callers delegate:

- :func:`publish_segment` lays an ordered ``{name: ndarray}`` mapping
  plus a JSON-serialisable ``meta`` dict into one named
  ``multiprocessing.shared_memory`` segment and returns a refcounted
  :class:`Segment` handle (the release that drops the count to zero
  unlinks the name).
- :func:`map_segment` attaches a segment by name — in the publisher or
  any worker — and rebuilds the metadata plus zero-copy ndarray views
  into the mapping.  Views are writable (the mapping is); callers that
  promise immutability freeze them (``setflags(write=False)``).
- :func:`leaked_segments` lists the /dev/shm entries under a prefix —
  the benchmark/test leak gate.

Lifetime contract (unchanged from the plan module): the publisher owns
the unlink; attachers only ever ``close`` their mappings.  POSIX keeps
the memory alive until the last mapping closes, so a publisher-side
unlink never pulls pages out from under a worker still holding views.
"""

from __future__ import annotations

import json
import os
import threading
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import ConfigError, ReproError

__all__ = [
    "ALIGN",
    "Segment",
    "align",
    "attach_raw",
    "leaked_segments",
    "map_segment",
    "publish_segment",
]

ALIGN = 64  # cache-line alignment for every array start
_HEADER_LEN_BYTES = 8
_MAGIC_LEN = 8


def align(offset: int) -> int:
    """Round ``offset`` up to the next :data:`ALIGN` boundary."""
    return (offset + ALIGN - 1) // ALIGN * ALIGN


def leaked_segments(prefix: str) -> list[str]:
    """Segments under ``prefix`` still linked in /dev/shm.

    Empty on platforms without a visible shm filesystem, in which case
    leak gates degrade to the in-process :attr:`Segment.released` checks.
    """
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(name for name in names if name.startswith(prefix))


_attach_lock = threading.Lock()


def attach_raw(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment WITHOUT registering it for cleanup.

    Python 3.8–3.12 register every ``SharedMemory`` with the resource
    tracker even when merely attaching (bpo-39959), so a worker exit
    would unlink a segment the publisher still serves from — and workers
    share one tracker process, whose bookkeeping is a set, so sending
    compensating ``unregister`` messages from several workers crashes
    it.  Instead, suppress the registration call for the duration of
    the attach; the publisher owns the unlink.
    """
    with _attach_lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    return segment


class Segment:
    """A published segment: publisher-side handle with refcounted unlink.

    Created holding one reference (the publisher's).  :meth:`retain`
    for every additional owner, :meth:`release` when done — the release
    that drops the count to zero closes the mapping and unlinks the
    name.  Both are idempotent past zero; ``released`` tells tests
    nothing leaked.  Subclasses pick the error type their layer raises
    on use-after-unlink via ``_error``.
    """

    _error: type[Exception] = ReproError

    def __init__(self, name: str, nbytes: int, segment: shared_memory.SharedMemory):
        self.name = name
        self.nbytes = nbytes
        self._segment = segment
        self._lock = threading.Lock()
        self._refs = 1
        self._unlinked = False

    def retain(self) -> "Segment":
        with self._lock:
            if self._unlinked:
                raise self._error(f"segment {self.name} already unlinked")
            self._refs += 1
        return self

    def release(self) -> bool:
        """Drop one reference; True when this call unlinked the segment."""
        with self._lock:
            if self._unlinked:
                return False
            self._refs -= 1
            if self._refs > 0:
                return False
            self._unlinked = True
        self._segment.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        return True

    @property
    def mapping(self) -> shared_memory.SharedMemory:
        """The underlying mapping — for layers that rewrap the handle."""
        return self._segment

    @property
    def released(self) -> bool:
        with self._lock:
            return self._unlinked

    @property
    def refcount(self) -> int:
        with self._lock:
            return self._refs

    def describe(self) -> dict:
        with self._lock:
            refs, unlinked = self._refs, self._unlinked
        return {
            "name": self.name,
            "nbytes": self.nbytes,
            "refcount": refs,
            "unlinked": unlinked,
        }


def _layout(arrays: dict[str, np.ndarray]) -> tuple[list[dict], int]:
    entries = []
    offset = 0
    for name, array in arrays.items():
        if not array.flags.c_contiguous:
            raise ConfigError(f"segment array {name!r} is not contiguous")
        offset = align(offset)
        entries.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
            }
        )
        offset += array.nbytes
    return entries, offset


def publish_segment(
    name: str,
    magic: bytes,
    meta: dict,
    arrays: dict[str, np.ndarray],
) -> Segment:
    """Copy ``arrays`` into a fresh named segment, exactly once.

    The layout is self-describing: attachers need only the name and the
    expected ``magic`` (8 bytes, the format/version stamp).  ``meta``
    must be JSON-serialisable; it travels in the header.  Returns the
    refcounted publisher-side handle; layers that keep a richer subclass
    (e.g. the plan module's fingerprinted one) rewrap the raw mapping.
    """
    if len(magic) != _MAGIC_LEN:
        raise ConfigError(f"segment magic must be {_MAGIC_LEN} bytes, got {len(magic)}")
    entries, data_bytes = _layout(arrays)
    header = json.dumps({"meta": meta, "arrays": entries}).encode("utf-8")
    data_start = align(_MAGIC_LEN + _HEADER_LEN_BYTES + len(header))
    total = data_start + data_bytes

    shm = shared_memory.SharedMemory(create=True, size=total, name=name)
    buf = shm.buf
    buf[:_MAGIC_LEN] = magic
    buf[_MAGIC_LEN : _MAGIC_LEN + _HEADER_LEN_BYTES] = len(header).to_bytes(8, "little")
    buf[_MAGIC_LEN + _HEADER_LEN_BYTES : _MAGIC_LEN + _HEADER_LEN_BYTES + len(header)] = header
    for entry, array in zip(entries, arrays.values()):
        start = data_start + entry["offset"]
        buf[start : start + array.nbytes] = array.tobytes()
    return Segment(shm.name, total, shm)


def map_segment(
    name: str, magic: bytes
) -> tuple[dict, dict[str, np.ndarray], shared_memory.SharedMemory]:
    """Attach a published segment: ``(meta, zero-copy views, mapping)``.

    The views point straight into the shared mapping and are writable —
    freeze them where the protocol demands immutability.  The caller
    owns ``mapping.close()`` (after dropping every view); attachers
    never unlink.
    """
    segment = attach_raw(name)
    buf = segment.buf
    if bytes(buf[:_MAGIC_LEN]) != magic:
        segment.close()
        raise ConfigError(f"segment {name!r} does not carry magic {magic!r}")
    header_len = int.from_bytes(
        bytes(buf[_MAGIC_LEN : _MAGIC_LEN + _HEADER_LEN_BYTES]), "little"
    )
    header = json.loads(
        bytes(buf[_MAGIC_LEN + _HEADER_LEN_BYTES : _MAGIC_LEN + _HEADER_LEN_BYTES + header_len])
    )
    data_start = align(_MAGIC_LEN + _HEADER_LEN_BYTES + header_len)
    arrays: dict[str, np.ndarray] = {}
    for entry in header["arrays"]:
        start = data_start + entry["offset"]
        count = int(np.prod(entry["shape"], dtype=np.int64))
        array = np.frombuffer(
            buf, dtype=np.dtype(entry["dtype"]), count=count, offset=start
        ).reshape(entry["shape"])
        arrays[entry["name"]] = array
    return header["meta"], arrays, segment
