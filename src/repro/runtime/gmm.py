"""Range-mass caching for GMM-reduced columns.

Theorem 5.1 of the paper estimates the per-component range probability
``P_GMM^k(R_i)`` from ``S`` Monte-Carlo samples drawn **once per
component** — and :class:`~repro.mixtures.interval.MonteCarloIntervalMass`
already draws (and sorts) those samples at ``finalise()`` time.  What the
estimate path still re-pays on every query is the *interval counting*:
two binary searches per (component, interval), repeated even when the
workload asks the same predicate bounds over and over (benchmark
workloads, dashboards, and plan-space exploration all do).

:class:`RangeMassCache` closes that gap with explicit memoization of
repeated predicate bounds, layered per column:

- level 1 caches single-interval masses ``reducer._interval_mass(lo, hi)``
  keyed on the exact float bounds;
- level 2 caches the full union-of-intervals result ``range_mass(R_i)``
  keyed on the canonical interval tuple (what
  :meth:`~repro.query.query.ColumnConstraint.cache_key`-style reuse hits).

Results are bitwise identical to calling ``reducer.range_mass`` directly:
the union is assembled with the same sum-then-clip arithmetic as
:meth:`repro.reducers.base.DomainReducer.range_mass`.

A cache instance belongs to one fitted model generation: the IAM
inference layer builds a fresh one on every ``_refresh_inference()``
(refit, hot reload), so stale masses can never answer for new reducers.
Cached arrays are returned read-only; callers must not mutate them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

Interval = tuple[float, float]

# Beyond this many distinct entries per column the whole column cache is
# dropped (coarse but O(1)); real workloads repeat bounds long before it.
DEFAULT_MAX_ENTRIES_PER_COLUMN = 4096


class RangeMassCache:
    """Memoizes ``P_GMM^k(R_i)`` lookups for a fixed set of reducers.

    One instance per (model generation); ``columns`` maps column name →
    fitted :class:`~repro.reducers.base.DomainReducer`.  Thread-safety:
    reads and writes are plain dict operations guarded by the GIL and the
    serving layer's per-model lock; the cache itself keeps no other
    shared mutable state.

    ``dtype`` is the precision tier of the masses the cache hands out
    (the plan dtype of the sampler consuming them).  The float64 default
    is bitwise-identical to calling the reducers directly; float32 casts
    each memoized mass once at compute time so the sampler's weight
    arithmetic never promotes back to float64 mid-loop.
    """

    def __init__(self, columns: dict[str, object] | None = None,
                 max_entries_per_column: int = DEFAULT_MAX_ENTRIES_PER_COLUMN,
                 dtype=np.float64):
        self._reducers: dict[str, object] = dict(columns or {})
        self.dtype = np.dtype(dtype)
        self._single: dict[str, dict[Interval, np.ndarray]] = {}
        self._union: dict[str, dict[tuple[Interval, ...], np.ndarray]] = {}
        self.max_entries_per_column = max_entries_per_column
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.version = 0

    # ------------------------------------------------------------------
    def add_column(self, name: str, reducer) -> None:
        """Register (or replace) the reducer answering for ``name``."""
        previous = self._reducers.get(name)
        self._reducers[name] = reducer
        if previous is not None and previous is not reducer:
            self._single.pop(name, None)
            self._union.pop(name, None)

    def columns(self) -> list[str]:
        return sorted(self._reducers)

    # ------------------------------------------------------------------
    def range_mass(self, column: str, intervals: Sequence[Interval]) -> np.ndarray:
        """Cached ``reducer.range_mass(intervals)`` for ``column``.

        Bitwise-equal to the uncached call; the returned array is
        read-only and shared between hits — copy before mutating.
        """
        reducer = self._reducers.get(column)
        if reducer is None:
            raise KeyError(f"no reducer registered for column {column!r}")
        key = tuple((float(low), float(high)) for low, high in intervals)
        union = self._union.setdefault(column, {})
        cached = union.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1

        base_impl = (
            getattr(type(reducer).range_mass, "__qualname__", "")
            == "DomainReducer.range_mass"
        )
        if base_impl:
            # Reproduce DomainReducer.range_mass arithmetic exactly, but
            # pull each interval's mass through the level-1 memo.
            total = np.zeros(reducer.n_tokens, dtype=self.dtype)
            for low, high in key:
                total += self._interval_mass(column, reducer, low, high)
            result = np.clip(total, 0.0, 1.0)
        else:
            # Reducers with a custom union rule (e.g. NullableReducer)
            # are memoized whole; decomposing could change their answer.
            result = np.asarray(reducer.range_mass(list(key)), dtype=self.dtype)
        result.setflags(write=False)
        if len(union) >= self.max_entries_per_column:
            union.clear()
            self.evictions += 1
        union[key] = result
        return result

    def range_mass_batch(
        self, column: str, interval_sets: Sequence[Sequence[Interval]]
    ) -> list[np.ndarray]:
        """Masses for many queries' interval unions on one column at once.

        The multi-query counterpart of :meth:`range_mass`, built for the
        grouped batch driver: one pass canonicalizes every request,
        answers repeats and memoized unions without re-deriving them,
        and computes each distinct missing interval's component mass
        exactly once across the whole batch (shared through the level-1
        memo).  Entry ``i`` of the returned list is bitwise-equal to
        ``range_mass(column, interval_sets[i])``.
        """
        reducer = self._reducers.get(column)
        if reducer is None:
            raise KeyError(f"no reducer registered for column {column!r}")
        keys = [
            tuple((float(low), float(high)) for low, high in intervals)
            for intervals in interval_sets
        ]
        union = self._union.setdefault(column, {})
        results: dict[tuple, np.ndarray] = {}
        pending: list[tuple] = []  # distinct keys to compute, request order
        for key in keys:
            if key in results:
                self.hits += 1  # duplicate within this batch: shared
                continue
            cached = union.get(key)
            if cached is not None:
                self.hits += 1
                results[key] = cached
            else:
                self.misses += 1
                results[key] = None  # placeholder marks it as pending
                pending.append(key)
        base_impl = (
            getattr(type(reducer).range_mass, "__qualname__", "")
            == "DomainReducer.range_mass"
        )
        for key in pending:
            if base_impl:
                # Same sum-then-clip arithmetic as range_mass, with each
                # interval's mass pulled through the level-1 memo (so an
                # interval shared by several queries is counted once).
                total = np.zeros(reducer.n_tokens, dtype=self.dtype)
                for low, high in key:
                    total += self._interval_mass(column, reducer, low, high)
                result = np.clip(total, 0.0, 1.0)
            else:
                result = np.asarray(reducer.range_mass(list(key)), dtype=self.dtype)
            result.setflags(write=False)
            if len(union) >= self.max_entries_per_column:
                union.clear()
                self.evictions += 1
            union[key] = result
            results[key] = result
        return [results[key] for key in keys]

    def _interval_mass(self, column: str, reducer, low: float, high: float) -> np.ndarray:
        singles = self._single.setdefault(column, {})
        cached = singles.get((low, high))
        if cached is not None:
            return cached
        mass = np.asarray(reducer._interval_mass(low, high), dtype=self.dtype)
        mass.setflags(write=False)
        if len(singles) >= self.max_entries_per_column:
            singles.clear()
            self.evictions += 1
        singles[(low, high)] = mass
        return mass

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every memoized mass (reducers stay registered)."""
        self._single.clear()
        self._union.clear()
        self.version += 1

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
            "evictions": self.evictions,
            "version": self.version,
            "columns": len(self._reducers),
            "entries": sum(len(d) for d in self._union.values())
            + sum(len(d) for d in self._single.values()),
        }
