"""repro.runtime: the inference side of the training/inference split.

Training builds and updates models through ``repro.nn`` /
``repro.autodiff``; this package compiles the trained artifacts into
pure-numpy execution form for the query path:

- :func:`~repro.runtime.plan.compile_made` /
  :class:`~repro.runtime.plan.MADEPlan` — a MADE exported to contiguous
  read-only arrays with masks folded into weights, plus a
  :class:`~repro.runtime.plan.Workspace` of reusable scratch buffers;
- :class:`~repro.runtime.gmm.RangeMassCache` — memoized
  ``P_GMM^k(R_i)`` range masses across queries.
- :class:`~repro.runtime.train.TrainStepExecutor` — the *training*
  counterpart: cached forward/backward tapes, a pooled buffer
  :class:`~repro.runtime.train.Arena`, and fused kernels for the
  Equation-6 loss, bitwise-equivalent to the eager autodiff path (see
  ``docs/training_runtime.md``).
- :class:`~repro.runtime.parallel.ParallelTrainEngine` — data-parallel
  training: W spawned gradient workers over zero-copy shared training
  data (:mod:`repro.runtime.shmio` segments), deterministic rank-order
  reduction, central clip + optimizer.

The split is machine-enforced: the ``runtime-tensor-in-inference``
iamlint rule forbids ``autodiff.Tensor`` construction anywhere in this
package (and in the progressive sampler's hot loop).  See
``docs/runtime.md`` for the compile → execute lifecycle.
"""

from repro.runtime.gmm import RangeMassCache
from repro.runtime.parallel import (
    ParallelTrainEngine,
    SharedTrainingData,
    shard_bounds,
)
from repro.runtime.plan import MADEPlan, Workspace, compile_made, softmax_inplace
from repro.runtime.train import (
    Arena,
    CompiledGMMLoss,
    CompiledMADELoss,
    TrainStepExecutor,
)

__all__ = [
    "Arena",
    "CompiledGMMLoss",
    "CompiledMADELoss",
    "MADEPlan",
    "ParallelTrainEngine",
    "RangeMassCache",
    "SharedTrainingData",
    "TrainStepExecutor",
    "Workspace",
    "compile_made",
    "shard_bounds",
    "softmax_inplace",
]
