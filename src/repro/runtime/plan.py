"""Compiled MADE inference plans.

Training and inference have opposite needs: the training path wants the
closure-based :class:`~repro.autodiff.tensor.Tensor` graph (gradients,
mask re-application every step so masked weights never learn), while the
query path (paper Section 5.2 progressive sampling) is pure inference —
the same ~D forward passes per query, weights frozen.  This module
compiles a trained :class:`~repro.ar.made.MADE` into a
:class:`MADEPlan`: contiguous read-only numpy arrays with the binary
connectivity masks folded into the weights once (``W * mask`` at compile
time), per-column output projections pre-sliced, and all scratch memory
coming from a caller-owned :class:`Workspace` of preallocated buffers.

Numerics contract
-----------------
Every plan operation replays the Module path's float operations in the
same order on the same dtype, so logits — and therefore progressive-
sampling selectivities — are **bitwise identical** to the
``nn``/``autodiff`` path (asserted by ``tests/test_runtime.py`` and the
``repro.bench inference`` experiment).  Compiling with a narrower
``dtype`` (e.g. ``np.float32``) produces the *serving tier*: an
approximation, not a bitwise replay, gated instead by the q-error
tolerance contract of ``repro.bench inference_precision`` (max q-error
ratio vs the float64 path <= 1.01; see docs/runtime.md "Precision
tiers").  Everything downstream of the plan — prebound programs,
PrefixCache entries, range-mass tables — carries the plan dtype, and a
:class:`Workspace` is pinned to the first plan dtype that binds a
program on it so the two tiers can never silently share scratch.

Thread-safety contract
----------------------
A :class:`MADEPlan` is immutable after compilation (every array is
marked read-only) and may be shared freely across threads — the serving
layer compiles one plan per registered model and lets every worker use
it.  The one mutable structure a plan owns, its :class:`PrefixCache` of
constrained-prefix logits, is internally locked and only ever hands out
frozen arrays, so sharing the plan shares the cache safely too.  A
:class:`Workspace` is mutable scratch state and must NOT be shared
between concurrent callers; give each thread (or each sampler) its own,
or pass ``workspace=None`` to fall back to per-call allocations.
"""

from __future__ import annotations

import hashlib
import threading
from functools import partial
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import CompileError, ConfigError, ShapeError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.ar.made import MADE

__all__ = [
    "MADEPlan",
    "PrefixCache",
    "Workspace",
    "compile_made",
    "plan_fingerprint",
    "softmax_inplace",
]


class Workspace:
    """Preallocated scratch buffers keyed on ``(tag, shape, dtype)``.

    Buffers are created lazily on first request and reused verbatim for
    every later request with the same key, so a sampler issuing the same
    batch shape D times per query allocates nothing after warm-up.  Not
    thread-safe: one workspace per concurrent caller.

    A workspace is additionally pinned to one *plan* dtype: the first
    compiled program bound onto it fixes the precision tier, and binding
    a program of a different plan dtype raises :class:`CompileError`
    (see :meth:`bind_program_dtype`).  Non-program buffers requested via
    :meth:`get` are exempt — the sampler deliberately keeps its uniform
    draws in float64 next to a float32 plan's scratch.
    """

    __slots__ = ("_buffers", "_programs", "_program_dtype")

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}
        # Compiled step lists (see MADEPlan._trunk_program), keyed by
        # (plan fingerprint, capacity, batch). Closures bind the buffers
        # above, so clearing one without the other would leave dangling
        # aliases.  (Memoised forward results used to live here too; they
        # moved to the plan-owned PrefixCache so every workspace — and
        # every cluster worker — shares one copy.)
        self._programs: dict[tuple, tuple] = {}
        # Plan dtype of the first program bound here; None until then.
        self._program_dtype: np.dtype | None = None

    def bind_program_dtype(self, dtype: np.dtype) -> None:
        """Pin this workspace to plans of ``dtype`` (first bind wins).

        Trunk-program buffers are keyed by dtype, so reusing one
        workspace across a float64 and a float32 plan would not corrupt
        results — it would silently double the scratch footprint and
        defeat the bandwidth win the narrow tier exists for.  The plan
        calls this before binding a program; a cross-tier reuse raises
        :class:`CompileError` so the caller allocates one workspace per
        precision tier instead.
        """
        if self._program_dtype is None:
            self._program_dtype = np.dtype(dtype)
        elif self._program_dtype != np.dtype(dtype):
            raise CompileError(
                f"workspace already holds {self._program_dtype} program "
                f"scratch; binding a {np.dtype(dtype)} plan program onto it "
                "would silently mix precision tiers — use one Workspace per "
                "plan dtype (or clear() this one first)"
            )

    def get(self, tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Return the reusable buffer for ``(tag, shape, dtype)``.

        Contents are unspecified on entry; callers overwrite fully.
        """
        key = (tag, shape, np.dtype(dtype))
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def clear(self) -> None:
        self._buffers.clear()
        self._programs.clear()
        self._program_dtype = None

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)


def softmax_inplace(logits: np.ndarray) -> np.ndarray:
    """Row softmax, in place, mirroring ``ops.softmax`` numerics exactly.

    Same max-subtraction (with the non-finite guard) and the same
    ``exp / sum`` division, so the result is bitwise equal to
    ``ops.softmax(Tensor(logits), axis=-1).numpy()`` — the sampler uses
    this one implementation for both the plan and the Module backends.
    """
    m = logits.max(axis=-1, keepdims=True)
    if not np.isfinite(m).all():  # rare: all-masked rows produce -inf maxima
        m = np.where(np.isfinite(m), m, 0.0)
    np.subtract(logits, m, out=logits)
    np.exp(logits, out=logits)
    total = logits.sum(axis=-1, keepdims=True)
    np.divide(logits, total, out=logits)
    return logits


def _frozen(array: np.ndarray, dtype) -> np.ndarray:
    """A contiguous read-only copy decoupled from the training weights."""
    out = np.array(array, dtype=dtype, copy=True, order="C")
    out.setflags(write=False)
    return out


def _frozen_view(array: np.ndarray) -> np.ndarray:
    """Mark ``array`` read-only in place and return it (no copy).

    The zero-copy counterpart of :func:`_frozen` for arrays that already
    live in their final storage (e.g. views into a shared-memory
    segment): freezing the view enforces the plan's immutability
    contract without duplicating the bytes the segment exists to share.
    """
    out = array
    out.setflags(write=False)
    return out


class PrefixCache:
    """Bounded cache of per-column logits for constrained-column prefixes.

    Progressive sampling repeatedly evaluates the MADE on contexts that
    are pure functions of the compiled weights: before any column is
    sampled every input token is the wildcard id, and after an
    equality-constrained column every sample carries the same token.
    Those contexts — a *prefix* of ``(column, token)`` assignments over
    an otherwise all-wildcard input — produce identical logits for every
    query that reaches them, so the plan caches the forward result once
    and replays the bytes for every later query, thread, and (via the
    shared-memory export, see :meth:`MADEPlan.to_buffers`) cluster
    worker.

    Entries are keyed ``(column, prefix, n_rows)`` where ``prefix`` is a
    tuple of ``(column, token)`` pairs in sampling order; the owning
    plan's fingerprint is implicit (one cache per plan, so a hot reload
    or cluster segment swap installs a fresh, empty cache and old
    entries can never leak across weight snapshots).  Stored arrays are
    frozen read-only copies, making the cache safe to share across
    threads: all bookkeeping happens under ``_lock`` and readers only
    ever see immutable arrays.

    The cache is bounded (FIFO eviction at ``max_entries``) so
    adversarial workloads — many distinct equality prefixes — cannot
    grow it without limit.

    When constructed with a ``dtype`` (every plan-owned cache is), the
    cache is pinned to that precision tier: storing an entry of any
    other dtype raises :class:`ConfigError`.  Plans of different dtypes
    already own distinct caches (their fingerprints differ), so the pin
    is a tripwire, making f32/f64 cross-contamination structurally
    impossible rather than merely unlikely.
    """

    def __init__(self, max_entries: int = 256, dtype=None) -> None:
        if max_entries < 1:
            raise ConfigError("PrefixCache max_entries must be >= 1")
        self._lock = threading.Lock()
        self.max_entries = int(max_entries)
        self.dtype = None if dtype is None else np.dtype(dtype)
        self._entries: dict[tuple, np.ndarray] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def lookup(self, key: tuple) -> np.ndarray | None:
        """The frozen logits for ``key``, or None (counted as hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
            else:
                self._hits += 1
            return entry

    def store(self, key: tuple, array: np.ndarray) -> None:
        """Insert ``array`` (frozen in place) unless ``key`` is present."""
        if self.dtype is not None and array.dtype != self.dtype:
            raise ConfigError(
                f"PrefixCache is pinned to {self.dtype}; refusing to store a "
                f"{array.dtype} entry for key {key!r} — per-dtype caches must "
                "not cross-contaminate precision tiers"
            )
        with self._lock:
            if key in self._entries:
                return  # a concurrent caller won the race; keep its entry
            while len(self._entries) >= self.max_entries:
                self._entries.pop(next(iter(self._entries)))
                self._evictions += 1
            self._entries[key] = _frozen_view(array)

    def stats(self) -> dict:
        """Monotone counters + current size, for telemetry deltas."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def export(self) -> list[tuple[tuple, np.ndarray]]:
        """Snapshot of ``(key, frozen array)`` pairs, insertion-ordered."""
        with self._lock:
            return list(self._entries.items())

    def __reduce__(self):
        # The lock is process-local and the entries are derived data
        # (rebuilt on first miss, or shipped explicitly by the plan's
        # shared-memory export) — a pickled cache travels empty, like a
        # freshly compiled plan's. Pinned to the base class: dynamic
        # instrumentation subclasses (the race sanitizer's) are
        # process-local and not picklable by name.
        dtype = None if self.dtype is None else self.dtype.str
        return (PrefixCache, (self.max_entries, dtype))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def plan_fingerprint(
    positions: np.ndarray,
    out_weight: np.ndarray,
    embeddings: Sequence[np.ndarray],
    trunk_weights: Sequence[np.ndarray],
) -> str:
    """The content hash identifying a compiled plan's weight snapshot.

    Shared by :func:`compile_made` (stamping fresh plans) and
    :meth:`MADEPlan.from_buffers` (verifying imported array sets), so a
    fingerprint match means the arrays are bitwise the ones the plan was
    compiled with.
    """
    digest = hashlib.sha256()
    digest.update(np.asarray(positions, dtype=np.int64).tobytes())
    for array in (out_weight, *embeddings, *trunk_weights):
        digest.update(array.tobytes())
    return digest.hexdigest()[:16]


class MADEPlan:
    """A trained MADE exported to pure-numpy execution form.

    Built by :func:`compile_made`, never mutated afterwards.  Exposes the
    sampler-facing surface of :class:`~repro.ar.made.MADE`
    (``n_columns`` / ``vocab_sizes`` / ``wildcard_ids`` / ``ar_order``)
    plus two execution entry points:

    - :meth:`forward_logits` — logits for every column at once;
    - :meth:`forward_slice` — logits for one column only, the shape the
      progressive sampler needs at step *i* (only that column's slice of
      the output projection is multiplied).
    """

    def __init__(
        self,
        *,
        vocab_sizes: list[int],
        positions: np.ndarray,
        embed_widths: list[int],
        embeddings: list[np.ndarray],
        residual: bool,
        trunk: list[tuple[np.ndarray, np.ndarray | None]],
        out_weight: np.ndarray,
        out_bias: np.ndarray | None,
        dtype: np.dtype,
        fingerprint: str,
    ) -> None:
        self.vocab_sizes = list(vocab_sizes)
        self.n_columns = len(self.vocab_sizes)
        self.positions = positions
        self.embed_widths = list(embed_widths)
        self.embeddings = embeddings
        self.residual = residual
        self.trunk = trunk
        self.out_weight = out_weight
        self.out_bias = out_bias
        self.dtype = np.dtype(dtype)
        self.fingerprint = fingerprint

        self.input_width = sum(self.embed_widths)
        self.hidden_width = out_weight.shape[0]
        self.wildcard_ids = np.asarray(self.vocab_sizes, dtype=np.int64)
        self.wildcard_ids.setflags(write=False)

        self._embed_slices: list[slice] = []
        start = 0
        for width in self.embed_widths:
            self._embed_slices.append(slice(start, start + width))
            start += width
        self.output_slices: list[slice] = []
        start = 0
        for vocab in self.vocab_sizes:
            self.output_slices.append(slice(start, start + vocab))
            start += vocab
        self.total_vocab = start
        # Per-column contiguous output projections: matches the Module
        # path, which materialises `(weight * mask)[:, s]` as a fresh
        # contiguous array on every column_logits call.
        self._out_weight_cols = []
        self._out_bias_cols = []
        for s in self.output_slices:
            w = np.ascontiguousarray(self.out_weight[:, s])
            w.setflags(write=False)
            self._out_weight_cols.append(w)
            if self.out_bias is None:
                self._out_bias_cols.append(None)
            else:
                b = np.ascontiguousarray(self.out_bias[s])
                b.setflags(write=False)
                self._out_bias_cols.append(b)
        # The column at AR position 0 conditions on nothing: its output
        # mask zeroes every hidden connection, so its folded projection is
        # all zeros and its logits are the bias row, independent of the
        # input. Detected per column at compile time so forward_slice can
        # skip the whole trunk (h @ 0 + b == b for any finite h).
        self._const_cols = [not w.any() for w in self._out_weight_cols]
        # Precomputed here, not lazily: plans are shared across serving
        # threads without a lock, so no attribute may be written after
        # __init__ (enforced by the plan-immutability analysis pass).
        self._ar_order = [int(c) for c in np.argsort(self.positions, kind="stable")]
        # Shared logits cache for constrained-column prefixes.  The cache
        # object itself is internally locked; the *reference* never
        # changes after __init__, preserving the immutability contract.
        # Pinned to the plan dtype so precision tiers cannot mix entries.
        self.prefix_cache = PrefixCache(dtype=self.dtype)

    # ------------------------------------------------------------------
    def ar_order(self) -> list[int]:
        """Column indices in sampling order (position 0 first)."""
        return list(self._ar_order)

    def nbytes(self) -> int:
        """Read-only compiled-weight footprint (excludes workspaces)."""
        arrays = [self.out_weight, *self.embeddings]
        if self.out_bias is not None:
            arrays.append(self.out_bias)
        for weight, bias in self.trunk:
            arrays.append(weight)
            if bias is not None:
                arrays.append(bias)
        return sum(a.nbytes for a in arrays)

    # ------------------------------------------------------------------
    # Export / import (shared-memory publication, on-disk caching)
    # ------------------------------------------------------------------
    def to_buffers(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Export the plan as ``(meta, arrays)`` — its complete state.

        ``meta`` is a JSON-safe description (shapes/dtypes live on the
        arrays themselves); ``arrays`` maps stable names to the plan's
        read-only ndarrays, *by reference* (no copies).  Feeding both to
        :meth:`from_buffers` reconstructs an equivalent plan; serializers
        (``repro.serve.cluster.shm``, future on-disk caches) consume this
        instead of reaching into plan attributes.
        """
        meta = {
            "version": 1,
            "fingerprint": self.fingerprint,
            "vocab_sizes": list(self.vocab_sizes),
            "embed_widths": list(self.embed_widths),
            "residual": bool(self.residual),
            "dtype": self.dtype.str,
            "trunk_bias": [bias is not None for _, bias in self.trunk],
            "out_bias": self.out_bias is not None,
        }
        arrays: dict[str, np.ndarray] = {
            "positions": self.positions,
            "out_weight": self.out_weight,
        }
        if self.out_bias is not None:
            arrays["out_bias"] = self.out_bias
        for k, embedding in enumerate(self.embeddings):
            arrays[f"embed.{k}"] = embedding
        for i, (weight, bias) in enumerate(self.trunk):
            arrays[f"trunk.{i}.weight"] = weight
            if bias is not None:
                arrays[f"trunk.{i}.bias"] = bias
        # Warm prefix-cache entries ride along so cluster workers attach
        # with the publisher's cache already hot.  They are *excluded*
        # from the fingerprint (they are derived data, reproducible from
        # the weights) and tolerated as absent on import.
        prefix_meta = []
        for j, (key, array) in enumerate(self.prefix_cache.export()):
            if len(key) != 3:
                # Derived entries (post-softmax "probs") are rebuilt on
                # demand from the logits; only logits are exported.
                continue
            column, prefix, n_rows = key
            arrays[f"prefix.{j}"] = array
            prefix_meta.append(
                {
                    "column": int(column),
                    "prefix": [[int(c), int(t)] for c, t in prefix],
                    "n_rows": int(n_rows),
                    "array": f"prefix.{j}",
                }
            )
        if prefix_meta:
            meta["prefix"] = prefix_meta
        return meta, arrays

    @classmethod
    def from_buffers(
        cls, meta: dict, arrays: dict[str, np.ndarray], verify: bool = True
    ) -> "MADEPlan":
        """Rebuild a plan from a :meth:`to_buffers` export.

        The big arrays are adopted as given (frozen in place, not
        copied), so callers handing in views over a shared-memory
        segment get a zero-copy plan.  With ``verify=True`` the content
        fingerprint is recomputed from the array bytes and checked
        against ``meta['fingerprint']`` — a mismatch (truncated segment,
        torn write, wrong archive) raises :class:`ConfigError` rather
        than silently serving wrong selectivities.
        """
        if meta.get("version") != 1:
            raise ConfigError(f"unsupported plan buffer version {meta.get('version')!r}")
        try:
            positions = _frozen_view(arrays["positions"])
            out_weight = _frozen_view(arrays["out_weight"])
            embeddings = [
                _frozen_view(arrays[f"embed.{k}"])
                for k in range(len(meta["vocab_sizes"]))
            ]
            trunk: list[tuple[np.ndarray, np.ndarray | None]] = []
            for i, has_bias in enumerate(meta["trunk_bias"]):
                weight = _frozen_view(arrays[f"trunk.{i}.weight"])
                bias = _frozen_view(arrays[f"trunk.{i}.bias"]) if has_bias else None
                trunk.append((weight, bias))
            out_bias = _frozen_view(arrays["out_bias"]) if meta["out_bias"] else None
        except KeyError as exc:
            raise ConfigError(f"plan buffer set is missing array {exc}") from exc
        if verify:
            actual = plan_fingerprint(
                positions, out_weight, embeddings, [w for w, _ in trunk]
            )
            if actual != meta["fingerprint"]:
                raise ConfigError(
                    f"plan buffers hash to {actual}, expected fingerprint "
                    f"{meta['fingerprint']} — the array set does not match the "
                    "plan it claims to be"
                )
        plan = cls(
            vocab_sizes=list(meta["vocab_sizes"]),
            positions=positions,
            embed_widths=list(meta["embed_widths"]),
            embeddings=embeddings,
            residual=bool(meta["residual"]),
            trunk=trunk,
            out_weight=out_weight,
            out_bias=out_bias,
            dtype=np.dtype(meta["dtype"]),
            fingerprint=meta["fingerprint"],
        )
        # Seed the fresh prefix cache from any exported warm entries.
        for entry in meta.get("prefix", ()):
            array = arrays.get(entry["array"])
            if array is None:
                continue  # partial exports are fine; entries are derived data
            key = (
                int(entry["column"]),
                tuple((int(c), int(t)) for c, t in entry["prefix"]),
                int(entry["n_rows"]),
            )
            plan.prefix_cache.store(key, _frozen_view(array))
        return plan

    # ------------------------------------------------------------------
    def _check_tokens(self, tokens: np.ndarray) -> np.ndarray:
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2 or tokens.shape[1] != self.n_columns:
            raise ConfigError(
                f"tokens must be (batch, {self.n_columns}), got {tokens.shape}"
            )
        return tokens

    def _embed(
        self,
        tokens: np.ndarray,
        wildcard_mask: np.ndarray | None,
        workspace: Workspace,
    ) -> np.ndarray:
        batch = len(tokens)
        x = workspace.get("embed", (batch, self.input_width), self.dtype)
        for k in range(self.n_columns):
            ids = tokens[:, k]
            if wildcard_mask is not None:
                ids = np.where(wildcard_mask[:, k], self.vocab_sizes[k], ids)
            x[:, self._embed_slices[k]] = self.embeddings[k][ids]
        return x

    def _trunk_program(
        self, workspace: Workspace, batch: int, capacity: int | None = None
    ) -> tuple[list, list, np.ndarray]:
        """Prebound execution steps for a fixed batch size.

        Returns ``(embeds, steps, h)``: per-column ``(embedding, view)``
        gather targets, ufunc calls already bound to their workspace
        buffers (no per-call buffer resolution or branch checks), and the
        buffer holding the final activations. The steps are exactly the
        ops :meth:`_hidden` issues, in the same order on the same
        buffers, so executing them is bitwise-identical — just without
        re-dispatching the generic interpreter every forward. Cached per
        ``(fingerprint, capacity, batch)`` in the workspace alongside the
        buffers the closures alias.

        ``capacity`` makes the program batch-shape-aware: buffers are
        allocated at ``(capacity, width)`` and every step binds the
        leading view ``buf[:batch]``, so grouped batch drivers whose
        group sizes vary from call to call share one buffer set instead
        of allocating per distinct group size.  Leading views of
        C-contiguous buffers are themselves C-contiguous, so the BLAS
        calls see the same memory layout as exact-size buffers and the
        results stay bitwise-identical.
        """
        if capacity is None or capacity < batch:
            capacity = batch
        key = (self.fingerprint, capacity, batch)
        program = workspace._programs.get(key)
        if program is not None:
            return program

        x = workspace.get("embed", (capacity, self.input_width), self.dtype)[:batch]
        embeds = [
            (self.embeddings[k], x[:, self._embed_slices[k]])
            for k in range(self.n_columns)
        ]
        steps: list = []
        if not self.residual:
            h = x
            for i, (weight, bias) in enumerate(self.trunk):
                nxt = workspace.get(
                    f"h{i}", (capacity, weight.shape[1]), self.dtype
                )[:batch]
                steps.append(partial(np.matmul, h, weight, out=nxt))
                if bias is not None:
                    steps.append(partial(np.add, nxt, bias, out=nxt))
                steps.append(partial(np.maximum, nxt, 0.0, out=nxt))
                h = nxt
        else:
            (w_in, b_in), *blocks = self.trunk
            h = workspace.get("h", (capacity, self.hidden_width), self.dtype)[:batch]
            t = workspace.get("t", (capacity, self.hidden_width), self.dtype)[:batch]
            a = workspace.get("a", (capacity, self.hidden_width), self.dtype)[:batch]
            steps.append(partial(np.matmul, x, w_in, out=h))
            if b_in is not None:
                steps.append(partial(np.add, h, b_in, out=h))
            for i in range(0, len(blocks), 2):
                w1, b1 = blocks[i]
                w2, b2 = blocks[i + 1]
                steps.append(partial(np.maximum, h, 0.0, out=t))
                steps.append(partial(np.matmul, t, w1, out=a))
                if b1 is not None:
                    steps.append(partial(np.add, a, b1, out=a))
                steps.append(partial(np.maximum, a, 0.0, out=a))
                steps.append(partial(np.matmul, a, w2, out=t))
                if b2 is not None:
                    steps.append(partial(np.add, t, b2, out=t))
                steps.append(partial(np.add, h, t, out=h))
            steps.append(partial(np.maximum, h, 0.0, out=h))
        program = (embeds, steps, h)
        workspace._programs[key] = program
        return program

    def _hidden(
        self,
        tokens: np.ndarray,
        wildcard_mask: np.ndarray | None,
        workspace: Workspace,
        capacity: int | None = None,
    ) -> np.ndarray:
        """Trunk activations up to (excluding) the output projection."""
        # Every forward funnels through here, so the whole-workspace
        # dtype pin lives here: it covers the prebound-program hot path
        # AND the interpreter path in one check.
        workspace.bind_program_dtype(self.dtype)
        if wildcard_mask is None:
            # Hot path (the sampler encodes wildcards in the ids): replay
            # the identical op sequence from the compiled program.
            embeds, steps, h = self._trunk_program(workspace, len(tokens), capacity)
            for k, (embedding, view) in enumerate(embeds):
                view[:] = embedding[tokens[:, k]]
            for step in steps:
                step()
            return h
        x = self._embed(tokens, wildcard_mask, workspace)
        batch = len(x)
        if not self.residual:
            h = x
            for i, (weight, bias) in enumerate(self.trunk):
                nxt = workspace.get(f"h{i}", (batch, weight.shape[1]), self.dtype)
                np.matmul(h, weight, out=nxt)
                if bias is not None:
                    nxt += bias
                np.maximum(nxt, 0.0, out=nxt)
                h = nxt
            return h

        # ResMADE: input layer, then pre-activation residual blocks
        # (x + W2·relu(W1·relu(x))), then a final relu.
        (w_in, b_in), *blocks = self.trunk
        h = workspace.get("h", (batch, self.hidden_width), self.dtype)
        np.matmul(x, w_in, out=h)
        if b_in is not None:
            h += b_in
        t = workspace.get("t", (batch, self.hidden_width), self.dtype)
        a = workspace.get("a", (batch, self.hidden_width), self.dtype)
        for i in range(0, len(blocks), 2):
            w1, b1 = blocks[i]
            w2, b2 = blocks[i + 1]
            np.maximum(h, 0.0, out=t)
            np.matmul(t, w1, out=a)
            if b1 is not None:
                a += b1
            np.maximum(a, 0.0, out=a)
            np.matmul(a, w2, out=t)
            if b2 is not None:
                t += b2
            h += t
        np.maximum(h, 0.0, out=h)
        return h

    # ------------------------------------------------------------------
    def forward_logits(
        self,
        tokens: np.ndarray,
        wildcard_mask: np.ndarray | None = None,
        out: np.ndarray | None = None,
        workspace: Workspace | None = None,
    ) -> np.ndarray:
        """Logits for every column: ``(batch, sum(vocab_sizes))``.

        Column *k*'s block is ``result[:, plan.output_slices[k]]``.  The
        returned array is the ``out`` argument when given, otherwise a
        workspace buffer (valid until the next call on that workspace).
        """
        tokens = self._check_tokens(tokens)
        workspace = workspace if workspace is not None else Workspace()
        h = self._hidden(tokens, wildcard_mask, workspace)
        if out is None:
            out = workspace.get("logits", (len(h), self.total_vocab), self.dtype)
        elif out.shape != (len(h), self.total_vocab):
            raise ShapeError(
                f"out has shape {out.shape}, expected {(len(h), self.total_vocab)}"
            )
        np.matmul(h, self.out_weight, out=out)
        if self.out_bias is not None:
            out += self.out_bias
        return out

    def forward_slice(
        self,
        column: int,
        tokens: np.ndarray,
        wildcard_mask: np.ndarray | None = None,
        out: np.ndarray | None = None,
        workspace: Workspace | None = None,
        capacity: int | None = None,
    ) -> np.ndarray:
        """Logits for ``column`` only: ``(batch, vocab_sizes[column])``.

        Multiplies just that column's pre-sliced output projection — the
        per-step cost the progressive sampler pays at sampling step *i*.
        ``capacity`` (>= batch) sizes the workspace buffers so callers
        issuing varying batch shapes share one allocation (see
        :meth:`_trunk_program`).
        """
        tokens = self._check_tokens(tokens)
        workspace = workspace if workspace is not None else Workspace()
        weight = self._out_weight_cols[column]
        expected = (len(tokens), weight.shape[1])
        if out is None:
            if capacity is not None and capacity > len(tokens):
                out = workspace.get(
                    "slice", (capacity, weight.shape[1]), self.dtype
                )[: len(tokens)]
            else:
                out = workspace.get("slice", expected, self.dtype)
        elif out.shape != expected:
            raise ShapeError(f"out has shape {out.shape}, expected {expected}")
        bias = self._out_bias_cols[column]
        if self._const_cols[column]:
            # Bias-only column (AR position 0): no trunk pass needed.
            out[:] = 0.0 if bias is None else bias
            return out
        h = self._hidden(tokens, wildcard_mask, workspace, capacity)
        np.matmul(h, weight, out=out)
        if bias is not None:
            out += bias
        return out

    def forward_prefix(
        self,
        column: int,
        prefix: tuple,
        n_rows: int,
        workspace: Workspace,
        capacity: int | None = None,
    ) -> np.ndarray:
        """:meth:`forward_slice` for a constrained-column prefix, cached.

        ``prefix`` is a tuple of ``(column, token)`` pairs describing an
        input whose listed columns all carry one fixed token and whose
        remaining columns are wildcards — the context every query whose
        equality-constrained prefix resolved to those tokens shares.
        The empty prefix is the all-wildcard context the sampler hits on
        each query's first constrained column.

        The first call per ``(column, prefix, n_rows)`` runs the
        ordinary forward on the synthesised tokens and parks a frozen
        copy in the plan's shared :class:`PrefixCache`; later calls —
        from any workspace, thread, or attached cluster worker — replay
        that copy into the slice buffer, skipping the trunk entirely.
        Values are bitwise-identical by construction: the cache holds
        the same forward's own output for the same key.

        Returns a writable buffer (callers run ``softmax_inplace`` on
        it), like :meth:`forward_slice`.
        """
        key = (column, prefix, n_rows)
        cached = self.prefix_cache.lookup(key)
        if cached is None:
            tokens = np.empty((n_rows, self.n_columns), dtype=np.int64)
            tokens[:] = self.wildcard_ids
            for col, token in prefix:
                tokens[:, col] = token
            out = self.forward_slice(
                column, tokens, workspace=workspace, capacity=capacity
            )
            self.prefix_cache.store(key, _frozen(out, self.dtype))
            return out
        vocab = self.vocab_sizes[column]
        if capacity is not None and capacity > n_rows:
            out = workspace.get("slice", (capacity, vocab), self.dtype)[:n_rows]
        else:
            out = workspace.get("slice", (n_rows, vocab), self.dtype)
        out[:] = cached
        return out

    def forward_prefix_probs(
        self,
        column: int,
        prefix: tuple,
        n_rows: int,
        workspace: Workspace,
        capacity: int | None = None,
    ) -> np.ndarray:
        """The *softmaxed* :meth:`forward_prefix` conditional, cached.

        The sampler consumes ``softmax_inplace(logits)``, and softmax is
        a row-wise op — so caching the post-softmax distribution under a
        ``"probs"``-marked key replays bitwise-identical values while
        skipping the replay copy *and* the block softmax. Hits return
        the frozen cached array itself (zero copy); callers must treat
        it as read-only, which the sampler does — it only ever derives
        fresh arrays from the distribution. Misses route through
        :meth:`forward_prefix`, so the logits entry is populated too
        (it is the exportable artifact, see :meth:`to_buffers`).
        """
        key = (column, prefix, n_rows, "probs")
        cached = self.prefix_cache.lookup(key)
        if cached is not None:
            return cached
        logits = self.forward_prefix(
            column, prefix, n_rows, workspace=workspace, capacity=capacity
        )
        probs = softmax_inplace(logits)
        self.prefix_cache.store(key, _frozen(probs, self.dtype))
        return probs

    def forward_slice_wildcard(
        self, column: int, n_rows: int, workspace: Workspace
    ) -> np.ndarray:
        """:meth:`forward_prefix` with the empty prefix (all wildcards).

        Kept as the spelled-out special case; the general machinery —
        including cross-workspace sharing of the cached logits — lives
        in :meth:`forward_prefix` / :class:`PrefixCache`.
        """
        return self.forward_prefix(column, (), n_rows, workspace)


def _layer_arrays(
    arrays: dict[str, np.ndarray],
    prefix: str,
    mask: np.ndarray,
    dtype,
) -> tuple[np.ndarray, np.ndarray | None]:
    """(folded weight, bias) for one MaskedLinear exported under ``prefix``."""
    weight = arrays[f"{prefix}.weight"]
    if weight.shape != mask.shape:
        raise ShapeError(
            f"{prefix}: weight shape {weight.shape} != mask shape {mask.shape}"
        )
    folded = _frozen(weight * mask, dtype)
    bias = arrays.get(f"{prefix}.bias")
    return folded, None if bias is None else _frozen(bias, dtype)


def compile_made(made: "MADE", dtype=None) -> MADEPlan:
    """Export a trained :class:`~repro.ar.made.MADE` into a :class:`MADEPlan`.

    Masks are folded into the weights once (``W * mask``), embeddings and
    projections are copied into contiguous read-only arrays, and the
    per-column output slices are pre-materialised.  The plan is a
    snapshot: training the module further does not change it — recompile
    after weight updates (the IAM model does so on every inference
    refresh, the serving layer on every hot reload).

    ``dtype=None`` keeps the module's native dtype (float64), which is
    the bitwise-exact mode; ``dtype=np.float32`` compiles the serving
    tier — half the weight/scratch bytes and roughly double the
    effective memory bandwidth, gated by the q-error tolerance contract
    (``repro.bench inference_precision``) instead of bitwise equality.
    """
    for attribute in ("vocab_sizes", "positions", "embed_widths", "residual"):
        if not hasattr(made, attribute):
            raise ConfigError(
                f"compile_made expects a MADE-like module, missing {attribute!r}"
            )
    arrays = made.export_arrays()
    dtype = np.dtype(dtype) if dtype is not None else arrays["output_layer.weight"].dtype

    embeddings = [
        _frozen(arrays[f"embeddings.item{k}.weight"], dtype)
        for k in range(made.n_columns)
    ]

    trunk: list[tuple[np.ndarray, np.ndarray | None]] = []
    if made.residual:
        trunk.append(
            _layer_arrays(arrays, "input_layer", made.input_layer.mask, dtype)
        )
        for i, block in enumerate(made.blocks):
            trunk.append(
                _layer_arrays(arrays, f"blocks.item{i}.linear1", block.linear1.mask, dtype)
            )
            trunk.append(
                _layer_arrays(arrays, f"blocks.item{i}.linear2", block.linear2.mask, dtype)
            )
    else:
        for i, layer in enumerate(made.hidden_layers):
            trunk.append(
                _layer_arrays(arrays, f"hidden_layers.item{i}", layer.mask, dtype)
            )
    out_weight, out_bias = _layer_arrays(
        arrays, "output_layer", made.output_layer.mask, dtype
    )

    positions = np.asarray(made.positions, dtype=np.int64).copy()
    positions.setflags(write=False)
    fingerprint = plan_fingerprint(
        positions, out_weight, embeddings, [w for w, _ in trunk]
    )
    return MADEPlan(
        vocab_sizes=list(made.vocab_sizes),
        positions=positions,
        embed_widths=list(made.embed_widths),
        embeddings=embeddings,
        residual=bool(made.residual),
        trunk=trunk,
        out_weight=out_weight,
        out_bias=out_bias,
        dtype=dtype,
        fingerprint=fingerprint,
    )
