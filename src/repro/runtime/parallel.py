"""Data-parallel training: gradient workers over zero-copy shared data.

``repro.serve.cluster`` scaled *inference* across cores; this module
does the same for the Equation-6 training loop.  Each mini-batch is
sharded across W spawn-based gradient workers:

::

    coordinator (trainer process)            worker w (spawned)
    ------------------------------           -----------------------------
    permutation + wildcard RNG               attach data segment (RO)
    write params -> shm buffer b      ─────► rebind param.data to buffer b
    send (step, rows shard, mask)            recompute shard tokens
                                             TrainStepExecutor.shard_sums
                                             grads -> shm arena slice w
    reduce shards in rank order       ◄───── loss sums -> shm slot w
    clip + Adam on reduced grads
    (buffer b flips every step)

Shared-memory layout (the :mod:`repro.runtime.shmio` wire format):

- **data segment** (published once, workers attach read-only, zero
  copy): ``static_tokens`` and every GMM column's raw values — the
  immutable training inputs.
- **arena segment**: a double-buffered flat parameter block
  (``params.0`` / ``params.1``), one flat gradient block per worker
  (``grads.w``), and one loss-sum row per worker (``sums.w``).  The
  coordinator writes parameters; worker *w* writes only its own slices.

Determinism contract (house style — see ``docs/training_runtime.md``):

- workers hold fixed row shards of each batch and scale gradients by
  the *global* ``1/B``, so the full-batch gradient is the sum of shard
  gradients; the coordinator reduces **in fixed rank order** (a
  deterministic summation tree) and applies clip + Adam centrally;
- with ``n_workers=1`` the single shard replays exactly the sequential
  compiled programs — bitwise-identical losses and parameters;
- any fixed W is bitwise-reproducible across runs and scheduling
  interleavings (the reduction order never depends on arrival order);
- different W only reorder floating-point sums, so final losses and
  parameters agree within tolerance, not bitwise.

All RNG (epoch permutations, wildcard masks) stays in the coordinator,
consumed in the sequential order; argmax token assignment consumes no
RNG and is recomputed shard-locally from the broadcast parameters.

Any failure — spawn timeout, :class:`~repro.errors.CompileError` in a
worker, a crashed or killed worker mid-step — raises
:class:`~repro.errors.ParallelTrainError`; trainers catch it and replay
the in-flight step on the sequential compiled path (the wildcard mask
is already drawn, parameters were never touched), then continue
sequentially.
"""

from __future__ import annotations

import itertools
import os
import pickle
import time
from multiprocessing import get_context

import numpy as np

from repro.errors import ParallelTrainError
from repro.runtime import shmio
from repro.runtime.train import TrainStepExecutor

__all__ = [
    "ParallelTrainEngine",
    "SharedTrainingData",
    "leaked_segments",
    "shard_bounds",
]

SEGMENT_PREFIX = "repro-train"
_DATA_MAGIC = b"IAMTDAT1"
_ARENA_MAGIC = b"IAMTARN1"

# Process-global generation counter (several engines may coexist).
_NONCES = itertools.count(1)


def _segment_name(kind: str, nonce: int) -> str:
    return f"{SEGMENT_PREFIX}-{kind}-{os.getpid():x}-{nonce:x}"


def leaked_segments() -> list[str]:
    """Training segments still linked in /dev/shm — the leak gate."""
    return shmio.leaked_segments(SEGMENT_PREFIX)


def shard_bounds(n_rows: int, n_shards: int) -> list[tuple[int, int]]:
    """Balanced contiguous ``[lo, hi)`` shard bounds, deterministic.

    The first ``n_rows % n_shards`` shards get one extra row.  Empty
    shards (batch smaller than W) come out as ``lo == hi`` and are
    skipped by the coordinator.
    """
    base, extra = divmod(n_rows, n_shards)
    bounds = []
    lo = 0
    for i in range(n_shards):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _frozen_view(array: np.ndarray) -> np.ndarray:
    """A read-only view of ``array`` (the shared mapping stays writable)."""
    view = array.view()
    view.setflags(write=False)
    return view


class SharedTrainingData:
    """Worker-side view of the published training inputs.

    Every array is a frozen zero-copy view straight into the shared
    mapping — the training set is never duplicated per worker.  The
    instance is an immutable snapshot (enforced by the
    ``plan-immutability`` lint, like :class:`~repro.runtime.plan.MADEPlan`);
    the mapping itself is reclaimed when the worker process exits.
    """

    def __init__(self, meta: dict, arrays: dict[str, np.ndarray]):
        self.n_rows = int(meta["n_rows"])
        self.gmm_columns = tuple(int(c) for c in meta["gmm_columns"])
        self.static_tokens = _frozen_view(arrays["static_tokens"])
        raw: dict[int, np.ndarray] = {}
        for column in self.gmm_columns:
            raw[column] = _frozen_view(arrays[f"raw.{column}"])
        self.raw_columns = raw


def _canonical_params(model, gmm_modules: dict) -> list:
    """The one parameter order both sides derive independently."""
    params = list(model.parameters())
    for module in gmm_modules.values():
        params.extend(module.parameters())
    return params


def _param_views(flat: np.ndarray, layout: list[dict]) -> list[np.ndarray]:
    views = []
    offset = 0
    for entry in layout:
        size = int(entry["size"])
        views.append(flat[offset : offset + size].reshape(entry["shape"]))
        offset += size
    return views


def _shard_tokens(data: SharedTrainingData, gmm_modules: dict,
                  rows: np.ndarray) -> np.ndarray:
    """Recompute the shard's reduced tokens from the live parameters.

    Mirrors ``JointTrainer._assign_tokens`` in argmax mode: static ids
    gathered from the shared token matrix, GMM ids re-derived per batch
    (argmax consumes no RNG, so shard-local recomputation is exact).
    """
    tokens = data.static_tokens[rows]
    for column, module in gmm_modules.items():
        tokens[:, column] = module.assign_numpy(data.raw_columns[column][rows])
    return tokens


def _worker_main(conn, worker_id: int, data_name: str, arena_name: str,
                 payload: bytes, row_stall_us: float) -> None:
    """Gradient-worker process body (spawn entry point).

    Attaches both segments, rebuilds the model structure from the
    pickled payload (parameter VALUES arrive through the shared
    parameter buffers every step, never through the pickle), pre-binds
    its gradient arena slice, then serves ``step`` messages until
    ``stop``.  Mappings are reclaimed on process exit; workers never
    unlink (the coordinator owns segment lifetime).
    """
    try:
        model, gmm_modules = pickle.loads(payload)
        data_meta, data_arrays, _data_seg = shmio.map_segment(data_name, _DATA_MAGIC)
        arena_meta, arena_arrays, _arena_seg = shmio.map_segment(arena_name, _ARENA_MAGIC)
        data = SharedTrainingData(data_meta, data_arrays)

        params = _canonical_params(model, gmm_modules)
        layout = arena_meta["params"]
        param_buffers = [
            [_frozen_view(v) for v in _param_views(arena_arrays[f"params.{b}"], layout)]
            for b in (0, 1)
        ]
        grad_views = _param_views(arena_arrays[f"grads.{worker_id}"], layout)
        sums = arena_arrays[f"sums.{worker_id}"]

        executor = TrainStepExecutor(
            model=model, gmm_modules=gmm_modules, raw_columns=data.raw_columns
        )
        executor.bind_external_grads(zip(params, grad_views))
        conn.send(("ready", worker_id, os.getpid()))

        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "stop":
                break
            if kind != "step":  # pragma: no cover - protocol guard
                conn.send(("error", -1, f"unknown message kind {kind!r}"))
                continue
            _, step_id, buf_index, denom, train_gmms, train_ar, rows, mask = message
            # Sync to the parameters the coordinator published for this
            # step: rebind .data to the indicated read-only buffer.
            for param, view in zip(params, param_buffers[buf_index]):
                param.data = view
            if row_stall_us > 0.0:
                # Benchmark hook: modeled per-row data stall (see
                # repro.bench training_parallel) — sleeps, not compute,
                # so shards overlap even on a single core.
                time.sleep(len(rows) * row_stall_us * 1e-6)
            tokens = _shard_tokens(data, gmm_modules, rows) if train_ar else None
            ar_sum, gmm_sums = executor.shard_sums(
                rows=rows,
                tokens=tokens,
                wildcard_mask=mask,
                train_gmms=train_gmms,
                train_ar=train_ar,
                denom=denom,
            )
            sums[0] = 0.0 if ar_sum is None else ar_sum
            for j, column in enumerate(data.gmm_columns):
                sums[1 + j] = gmm_sums.get(column, 0.0)
            conn.send(("done", step_id))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent gone
        pass
    except Exception as exc:  # surface init/step failures to the parent
        try:
            conn.send(("error", -1, f"{type(exc).__name__}: {exc}"))
        except OSError:  # pragma: no cover - pipe already closed
            pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        # Hard-exit: executor tapes and rebound parameters hold live
        # views into the shared mappings, so interpreter-shutdown GC
        # would hit SharedMemory.__del__ with exported pointers.  The
        # OS unmaps everything on process exit; the coordinator owns
        # unlinking.
        os._exit(0)


class ParallelTrainEngine:
    """Coordinator for W gradient workers over one shared training set.

    Lifecycle: :meth:`start` publishes the segments and spawns the
    workers (raising :class:`ParallelTrainError` — after cleaning up —
    if anything fails to come up); :meth:`step` drives one mini-batch
    and leaves reduced gradients in ``param.grad``; :meth:`close`
    stops the workers and unlinks the segments (idempotent; trainers
    call it from a ``finally``).

    The engine is single-threaded by design — the step protocol is a
    strict send-all / await-all barrier, so no coordinator-side locks
    or monitor threads exist.  ``row_stall_us`` is a benchmark hook: a
    modeled per-row data stall applied inside each worker (see
    ``repro.bench training_parallel``).
    """

    def __init__(self, model, gmm_modules: dict, raw_columns: dict,
                 static_tokens: np.ndarray, n_workers: int, *,
                 row_stall_us: float = 0.0,
                 start_timeout_s: float = 120.0,
                 step_timeout_s: float = 300.0):
        if n_workers < 1:
            raise ParallelTrainError(f"n_workers must be >= 1, got {n_workers}")
        self.model = model
        self.gmm_modules = dict(gmm_modules)
        self.gmm_columns = tuple(self.gmm_modules)
        self.n_workers = int(n_workers)
        self.row_stall_us = float(row_stall_us)
        self.start_timeout_s = float(start_timeout_s)
        self.step_timeout_s = float(step_timeout_s)
        self._static_tokens = np.ascontiguousarray(static_tokens, dtype=np.int64)
        self._raw_columns = {
            int(column): np.ascontiguousarray(values, dtype=np.float64)
            for column, values in raw_columns.items()
        }
        self._params = _canonical_params(model, self.gmm_modules)
        self._n_ar_params = len(list(model.parameters()))
        self.steps = 0
        self._step_id = 0
        self._started = False
        self._closed = False
        self._procs: list = []
        self._conns: list = []
        self._data_segment = None
        self._arena_segment = None
        self._arena_map = None
        self._arena_arrays = None
        self._param_out_views: list[list[np.ndarray]] = []
        self._grad_views: list[list[np.ndarray]] = []
        self._sums_views: list[np.ndarray] = []
        self._reduced: list[np.ndarray] = []

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._started and not self._closed

    def start(self) -> None:
        """Publish segments, spawn W workers, await their ready handshakes."""
        if self._started or self._closed:
            raise ParallelTrainError("engine already started or closed")
        try:
            self._publish_segments()
            self._spawn_workers()
            self._await_ready()
        except ParallelTrainError:
            self.close()
            raise
        except Exception as exc:
            self.close()
            raise ParallelTrainError(f"engine start failed: {exc}") from exc
        self._started = True

    def _publish_segments(self) -> None:
        nonce = next(_NONCES)
        data_arrays: dict[str, np.ndarray] = {"static_tokens": self._static_tokens}
        for column, values in self._raw_columns.items():
            data_arrays[f"raw.{column}"] = values
        data_meta = {
            "n_rows": int(len(self._static_tokens)),
            "gmm_columns": [int(c) for c in self.gmm_columns],
        }
        self._data_segment = shmio.publish_segment(
            _segment_name("data", nonce), _DATA_MAGIC, data_meta, data_arrays
        )

        layout = [
            {"shape": list(p.data.shape), "size": int(p.data.size)}
            for p in self._params
        ]
        total = sum(entry["size"] for entry in layout)
        flat_params = (
            np.concatenate([p.data.ravel() for p in self._params])
            if self._params
            else np.zeros(0)
        )
        zero_grads = np.zeros(total)
        n_sums = 1 + len(self.gmm_columns)
        zero_sums = np.zeros(n_sums)
        arena_arrays: dict[str, np.ndarray] = {
            "params.0": flat_params,
            "params.1": flat_params,
        }
        for w in range(self.n_workers):
            arena_arrays[f"grads.{w}"] = zero_grads
            arena_arrays[f"sums.{w}"] = zero_sums
        arena_meta = {
            "params": layout,
            "n_workers": self.n_workers,
            "n_sums": n_sums,
        }
        self._arena_segment = shmio.publish_segment(
            _segment_name("arena", nonce), _ARENA_MAGIC, arena_meta, arena_arrays
        )

        _meta, arrays, self._arena_map = shmio.map_segment(
            self._arena_segment.name, _ARENA_MAGIC
        )
        self._arena_arrays = arrays
        self._param_out_views = [
            _param_views(arrays[f"params.{b}"], layout) for b in (0, 1)
        ]
        self._grad_views = [
            _param_views(arrays[f"grads.{w}"], layout)
            for w in range(self.n_workers)
        ]
        self._sums_views = [arrays[f"sums.{w}"] for w in range(self.n_workers)]
        self._reduced = [np.empty_like(p.data) for p in self._params]

    def _spawn_workers(self) -> None:
        ctx = get_context("spawn")
        payload = pickle.dumps(
            (self.model, self.gmm_modules), protocol=pickle.HIGHEST_PROTOCOL
        )
        for worker_id in range(self.n_workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, worker_id, self._data_segment.name,
                      self._arena_segment.name, payload, self.row_stall_us),
                name=f"repro-train-{worker_id}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def _await_ready(self) -> None:
        deadline = time.monotonic() + self.start_timeout_s
        for worker_id, conn in enumerate(self._conns):
            message = self._recv(worker_id, conn, deadline)
            if message[0] == "error":
                raise ParallelTrainError(
                    f"worker {worker_id} failed to start: {message[2]}"
                )
            if message[0] != "ready":  # pragma: no cover - protocol guard
                raise ParallelTrainError(
                    f"worker {worker_id} sent {message[0]!r} before ready"
                )

    def _recv(self, worker_id: int, conn, deadline: float):
        """Receive one message, watching for death and the deadline."""
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ParallelTrainError(f"worker {worker_id} timed out")
            try:
                if conn.poll(min(remaining, 0.2)):
                    return conn.recv()
            except (EOFError, OSError):
                raise ParallelTrainError(f"worker {worker_id} died") from None
            if not self._procs[worker_id].is_alive():
                raise ParallelTrainError(f"worker {worker_id} died")

    # ------------------------------------------------------------------
    def step(self, rows: np.ndarray, wildcard_mask: np.ndarray | None,
             train_gmms: bool, train_ar: bool) -> float | None:
        """One sharded training step; reduced gradients land in ``.grad``.

        Raises :class:`ParallelTrainError` on any worker failure — the
        caller replays the step sequentially (parameters are untouched:
        the optimizer only runs after a successful reduction).
        """
        if not self.alive:
            raise ParallelTrainError("engine is not running")
        has_gmm = train_gmms and bool(self.gmm_modules)
        has_ar = train_ar and self.model is not None
        if not has_gmm and not has_ar:
            return None
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        denom = len(rows)
        step_id = self._step_id
        self._step_id += 1
        buf_index = step_id % 2

        # Broadcast this step's parameters through the double buffer.
        view = None
        for view, param in zip(self._param_out_views[buf_index], self._params):
            np.copyto(view, param.data)
        # Drop the loop-local arena view: on a worker failure the raised
        # error's traceback pins this frame, and a lingering view would
        # block the arena unmap during the trainer's fallback cleanup.
        del view

        active: list[int] = []
        try:
            for worker_id, (lo, hi) in enumerate(
                shard_bounds(denom, self.n_workers)
            ):
                if lo == hi:
                    continue
                mask_shard = (
                    wildcard_mask[lo:hi] if wildcard_mask is not None else None
                )
                self._conns[worker_id].send(
                    ("step", step_id, buf_index, denom, train_gmms, train_ar,
                     rows[lo:hi], mask_shard)
                )
                active.append(worker_id)
            deadline = time.monotonic() + self.step_timeout_s
            for worker_id in active:
                message = self._recv(worker_id, self._conns[worker_id], deadline)
                if message[0] == "error":
                    raise ParallelTrainError(
                        f"worker {worker_id} failed: {message[2]}"
                    )
                if message[0] != "done" or message[1] != step_id:
                    raise ParallelTrainError(
                        f"worker {worker_id} answered out of protocol"
                    )
        except ParallelTrainError:
            raise
        except (OSError, EOFError, BrokenPipeError) as exc:
            raise ParallelTrainError(f"worker pipe failure: {exc}") from None

        self._reduce_grads(active, has_gmm, has_ar)
        self.steps += 1
        return self._reduce_loss(active, denom, has_gmm, has_ar)

    def _reduce_grads(self, active: list[int], has_gmm: bool,
                      has_ar: bool) -> None:
        """Rank-ordered shard summation into stable coordinator buffers.

        Strictly ``shard[active[0]] + shard[active[1]] + ...`` for every
        parameter — a fixed-order summation tree, so the result never
        depends on worker completion order.  ``param.grad`` is bound to
        the reduced buffer, ready for clip + optimizer.
        """
        for index, param in enumerate(self._params):
            is_ar = index < self._n_ar_params
            if is_ar and not has_ar:
                continue
            if not is_ar and not has_gmm:
                continue
            reduced = self._reduced[index]
            np.copyto(reduced, self._grad_views[active[0]][index])
            for worker_id in active[1:]:
                np.add(reduced, self._grad_views[worker_id][index], out=reduced)
            param.grad = reduced

    def _reduce_loss(self, active: list[int], denom: int, has_gmm: bool,
                     has_ar: bool) -> float:
        """Combine shard loss sums with the executor's exact scaling ops."""
        loss = None
        if has_gmm:
            for j in range(len(self.gmm_columns)):
                raw = float(self._sums_views[active[0]][1 + j])
                for worker_id in active[1:]:
                    raw = raw + float(self._sums_views[worker_id][1 + j])
                term = -(raw * (1.0 / denom))
                loss = term if loss is None else loss + term
        if has_ar:
            raw = float(self._sums_views[active[0]][0])
            for worker_id in active[1:]:
                raw = raw + float(self._sums_views[worker_id][0])
            ar_loss = -(raw * (1.0 / denom))
            loss = ar_loss if loss is None else loss + ar_loss
        return float(loss)

    # ------------------------------------------------------------------
    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL one worker (crash-injection hook for tests/benchmarks)."""
        self._procs[worker_id].kill()

    def close(self) -> None:
        """Stop workers, drop mappings, unlink segments.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        # Drop every view before unmapping, then unlink both segments.
        self._param_out_views = []
        self._grad_views = []
        self._sums_views = []
        self._arena_arrays = None
        if self._arena_map is not None:
            try:
                self._arena_map.close()
            except BufferError:  # pragma: no cover - stray view
                pass
            self._arena_map = None
        for segment in (self._data_segment, self._arena_segment):
            if segment is not None:
                segment.release()
        self._data_segment = None
        self._arena_segment = None
