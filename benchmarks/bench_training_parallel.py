"""Data-parallel training: sharded gradient workers vs sequential.

Runs the same determinism-gated sweep as ``python -m repro.bench
training_parallel`` (W=1 bitwise gate, fixed-W reproducibility,
tolerance check, shm leak gate) at a reduced worker sweep so the
pytest-benchmark suite stays quick; the full 1/2/4 sweep and its JSON
gate live in the CLI command.
"""

from repro.bench import experiments, record_table


def test_training_parallel(benchmark):
    def sweep():
        return experiments.training_parallel(worker_counts=(1, 2))

    headers, rows, summary = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table("training_parallel", headers, rows,
                 title="Data-parallel training over shared memory")

    # W=1 replays the sequential compiled path bitwise.
    assert summary["bitwise_w1"]
    # The largest W is bitwise-reproducible run to run.
    assert summary["deterministic_fixed_w"]
    # Every W lands within the documented tolerance of sequential params.
    assert summary["params_within_tolerance"]
    # Both training segments were unlinked on engine teardown.
    assert summary["leaked_segments"] == []
    # Two workers overlap the modeled stall that one cannot.
    assert summary["speedup"]["2"] > 1.3, f"no scale-out: {summary['speedup']}"
