"""Tables 9-11: GMM vs equi-depth histogram vs spline vs UMM domain
reducers inside IAM, at 30/100/1000 budgets.

Expected shape: at equal budget GMM wins; at 1000 buckets the
alternatives close the median gap but keep far larger max errors and
slower estimation (the uniform-within-bucket assumption on skewed data).
"""

import pytest

from repro.bench import experiments, record_table

TABLE_IDS = {"wisdm": "table9", "twi": "table10", "higgs": "table11"}


@pytest.mark.parametrize("dataset", ("wisdm", "twi", "higgs"))
def test_tables9_11_domain_reducers(benchmark, dataset):
    headers, rows = experiments.reducer_comparison(dataset)
    record_table(f"{TABLE_IDS[dataset]}_reducers_{dataset}", headers, rows,
                 title=f"Impact of domain reducing methods on {dataset.upper()} (reproduced)")

    estimator, _ = experiments.get_estimator("iam", dataset)
    _, test = experiments.get_workloads(dataset)
    benchmark(estimator.estimate_many, test.queries[:8])
