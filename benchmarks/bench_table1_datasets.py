"""Table 1: dataset statistics (rows, column types, joint size, NCIE,
skewness) for the three single-table datasets."""

from repro.bench import experiments, record_table
from repro.data.stats import ncie


def test_table1_dataset_statistics(benchmark):
    headers, rows = experiments.dataset_statistics()
    record_table("table1_datasets", headers, rows,
                 title="Table 1: datasets in evaluation (reproduced)")
    table = experiments.get_table("twi")
    benchmark(ncie, table.as_matrix())
