"""Table 5: join-query q-errors on the IMDB-like star schema."""

from repro.bench import experiments, record_table


def test_table5_imdb_join_accuracy(benchmark):
    headers, rows = experiments.join_accuracy_table()
    record_table("table5_imdb", headers, rows,
                 title="Table 5: estimation errors on IMDB joins (reproduced)")

    estimator, _ = experiments.get_join_estimator("iam")
    _, test = experiments.get_join_workloads()
    benchmark(estimator.estimate_cardinalities, test.queries[:8])
