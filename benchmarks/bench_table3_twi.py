"""Table 3: q-error quantiles of every estimator on TWI (spatial)."""

from repro.bench import experiments, record_table


def test_table3_twi_accuracy(benchmark):
    headers, rows, summaries = experiments.accuracy_table("twi")
    record_table("table3_twi", headers, rows,
                 title="Table 3: estimation errors on TWI (reproduced)")
    # AR-based estimators must dominate independence at the tail on
    # strongly-correlated spatial data.
    assert summaries["iam"].p95 <= summaries["postgres"].p95

    estimator, _ = experiments.get_estimator("iam", "twi")
    _, test = experiments.get_workloads("twi")
    benchmark(estimator.estimate_many, test.queries[:16])
