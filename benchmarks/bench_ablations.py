"""Ablations of IAM's design choices (DESIGN.md Section 6):

1. unbiased vs vanilla (biased) progressive sampling — Section 5.2;
2. interval-mass estimator: Monte-Carlo (paper) vs exact CDF vs
   empirical per-component fractions (Theorem 5.1's exact quantity);
3. joint vs separate training — Section 4.3;
4. argmax vs sampled component assignment — Section 4.2;
5. column order — natural vs random vs smallest-domain-first;
6. GMM Monte-Carlo sample count S — "Impact of GMM Sample Number".
"""

from repro.bench import experiments, record_table


def test_ablation_unbiased_sampling(benchmark):
    headers, rows = experiments.ablation_table(
        "twi",
        {
            "unbiased (paper)": {"bias_correction": True},
            "biased (vanilla)": {"bias_correction": False},
        },
    )
    record_table("ablation_unbiased", headers, rows,
                 title="Ablation: unbiased vs vanilla progressive sampling (TWI)")
    by_name = {row[0]: row for row in rows}
    # The biased variant counts whole components: much worse everywhere.
    assert by_name["unbiased (paper)"][1] <= by_name["biased (vanilla)"][1]

    estimator, _ = experiments.get_estimator("iam", "twi")
    _, test = experiments.get_workloads("twi")
    benchmark(estimator.estimate_many, test.queries[:8])


def test_ablation_interval_estimator(benchmark):
    headers, rows = experiments.ablation_table(
        "twi",
        {
            "montecarlo (paper)": {"interval_kind": "montecarlo"},
            "exact CDF": {"interval_kind": "exact"},
            "empirical": {"interval_kind": "empirical"},
        },
    )
    record_table("ablation_interval", headers, rows,
                 title="Ablation: interval-mass estimator for P_GMM(R) (TWI)")

    estimator, _ = experiments.get_estimator("iam", "twi")
    _, test = experiments.get_workloads("twi")
    benchmark(estimator.estimate_many, test.queries[:8])


def test_ablation_training_mode(benchmark):
    headers, rows = experiments.ablation_table(
        "wisdm",
        {
            "joint (paper)": {"joint_training": True},
            "separate": {"joint_training": False},
        },
    )
    record_table("ablation_training", headers, rows,
                 title="Ablation: joint vs separate GMM/AR training (WISDM)")

    estimator, _ = experiments.get_estimator("iam", "wisdm")
    _, test = experiments.get_workloads("wisdm")
    benchmark(estimator.estimate_many, test.queries[:8])


def test_ablation_assignment(benchmark):
    headers, rows = experiments.ablation_table(
        "twi",
        {
            "argmax (paper)": {"assignment": "argmax"},
            "sampled": {"assignment": "sampled"},
        },
    )
    record_table("ablation_assignment", headers, rows,
                 title="Ablation: argmax vs sampled component assignment (TWI)")

    estimator, _ = experiments.get_estimator("iam", "twi")
    _, test = experiments.get_workloads("twi")
    benchmark(estimator.estimate_many, test.queries[:8])


def test_ablation_column_order(benchmark):
    headers, rows = experiments.ablation_table(
        "wisdm",
        {
            "natural (paper)": {"order": "natural"},
            "random": {"order": "random"},
            "min-domain-first": {"order": "mindomain"},
        },
    )
    record_table("ablation_order", headers, rows,
                 title="Ablation: AR column order (WISDM)")

    estimator, _ = experiments.get_estimator("iam", "wisdm")
    _, test = experiments.get_workloads("wisdm")
    benchmark(estimator.estimate_many, test.queries[:8])


def test_ablation_multi_column_gmm(benchmark):
    """Section 4.2's other design alternative: one multivariate GMM over
    all reduced columns vs the paper's one-GMM-per-column.

    NOTE an honest divergence: on these *synthetic* datasets the joint
    GMM can win, because the generators are literally Gaussian mixtures
    (the joint GMM is the true model family). The paper's preliminary
    experiments on real data found no gain; the memory argument (full
    covariances are O(n^2)) is also softened here by diagonal
    covariances. See EXPERIMENTS.md.
    """
    from repro.bench.config import bench_scale
    from repro.estimators.multigmm import IAMMultiGMM
    from repro.metrics import summarize

    scale = bench_scale()
    table = experiments.get_table("twi")
    _, test = experiments.get_workloads("twi")

    multi = IAMMultiGMM(
        n_components=scale.n_components,
        epochs=scale.ar_epochs,
        hidden_sizes=scale.ar_hidden,
        learning_rate=1e-2,
        n_progressive_samples=scale.progressive_samples,
        seed=0,
    ).fit(table)
    per_column, _ = experiments.get_estimator("iam", "twi")

    rows = []
    for label, estimator in (("per-column (paper)", per_column), ("joint multivariate", multi)):
        summary = summarize(
            test.true_selectivities, estimator.estimate_many(test.queries), table.num_rows
        )
        rows.append([label, *[round(v, 2) for v in summary.as_row()]])
    record_table("ablation_multigmm", ["Variant", "Mean", "Median", "95th", "99th", "Max"],
                 rows, title="Ablation: one GMM per column vs one joint GMM (TWI)")

    benchmark(multi.estimate_many, test.queries[:8])


def test_ablation_stratified_sampling(benchmark):
    """Variance reduction: systematic draws on the first constrained
    column (an engineering extension; unbiasedness proven by tests)."""
    headers, rows = experiments.ablation_table(
        "twi",
        {
            "iid (paper)": {"stratified_sampling": False},
            "stratified first column": {"stratified_sampling": True},
        },
    )
    record_table("ablation_stratified", headers, rows,
                 title="Ablation: iid vs stratified progressive sampling (TWI)")

    estimator, _ = experiments.get_estimator("iam", "twi")
    _, test = experiments.get_workloads("twi")
    benchmark(estimator.estimate_many, test.queries[:8])


def test_ablation_factorization_budget(benchmark):
    """Neurocard's subcolumn-size knob: smaller max_subdomain forces more
    digits (narrower layers, longer AR chains). Paper context: they fix
    2^11; with laptop-scale domains the digit count flips at small caps.
    """
    from repro.bench.config import bench_scale
    from repro.estimators import build_estimator
    from repro.metrics import summarize

    scale = bench_scale()
    table = experiments.get_table("twi")
    _, test = experiments.get_workloads("twi")
    rows = []
    for cap in (2**11, 128, 24):
        estimator = build_estimator(
            "naru",
            epochs=scale.ar_epochs,
            hidden_sizes=scale.ar_hidden,
            learning_rate=1e-2,
            n_progressive_samples=scale.progressive_samples,
            factorize_threshold=1000,
            max_subdomain=cap,
            seed=0,
        ).fit(table)
        digits = max(
            len(slots) for slots in estimator._plan.column_slots
        )
        summary = summarize(
            test.true_selectivities, estimator.estimate_many(test.queries), table.num_rows
        )
        rows.append([f"cap {cap} ({digits} digits)",
                     round(summary.median, 2), round(summary.p95, 2),
                     round(summary.max, 1),
                     round(estimator.size_bytes() / 2**20, 3)])
    record_table("ablation_factorization", ["Budget", "Median", "95th", "Max", "Size MB"],
                 rows, title="Ablation: Neurocard factorization budget (TWI)")

    estimator, _ = experiments.get_estimator("naru", "twi")
    benchmark(estimator.estimate_many, test.queries[:8])


def test_ablation_gmm_sample_count(benchmark):
    headers, rows = experiments.ablation_table(
        "twi",
        {
            "S=100": {"samples_per_component": 100},
            "S=1000": {"samples_per_component": 1000},
            "S=10000 (paper)": {"samples_per_component": 10_000},
        },
    )
    record_table("ablation_gmm_samples", headers, rows,
                 title="Ablation: GMM Monte-Carlo sample count S (TWI)")

    estimator, _ = experiments.get_estimator("iam", "twi")
    _, test = experiments.get_workloads("twi")
    benchmark(estimator.estimate_many, test.queries[:8])
