"""Technical-report experiments: impact of data and query distribution.

The paper defers these to its technical report ("We also evaluate ...
the impact of data and query distribution"): how IAM's accuracy responds
to (a) increasingly skewed data and (b) queries touching more columns.

Expected shapes: the GMM reduction is robust across skewness (its
Section 4.2 claim, "our method is robust to various skewness of data");
errors grow moderately with predicate count as conditional estimates
compound.
"""

from repro.bench import experiments, record_table


def test_data_distribution_sweep(benchmark):
    headers, rows = experiments.data_distribution_sweep()
    record_table("tr_data_distribution", headers, rows,
                 title="Technical report: IAM accuracy vs dataset skewness (HIGGS variants)")
    medians = [row[1] for row in rows]
    assert all(m < 3.0 for m in medians)  # robust medians across skew

    estimator, _ = experiments.get_estimator("iam", "higgs")
    _, test = experiments.get_workloads("higgs")
    benchmark(estimator.estimate_many, test.queries[:8])


def test_query_distribution_sweep(benchmark):
    headers, rows = experiments.query_distribution_sweep("higgs")
    record_table("tr_query_distribution", headers, rows,
                 title="Technical report: IAM accuracy vs number of predicates (HIGGS)")
    assert all(row[1] < 5.0 for row in rows)

    estimator, _ = experiments.get_estimator("iam", "higgs")
    _, test = experiments.get_workloads("higgs")
    benchmark(estimator.estimate_many, test.queries[:8])
