"""Table 4: q-error quantiles of every estimator on HIGGS (7 skewed
continuous columns, weak correlation)."""

from repro.bench import experiments, record_table


def test_table4_higgs_accuracy(benchmark):
    headers, rows, summaries = experiments.accuracy_table("higgs")
    record_table("table4_higgs", headers, rows,
                 title="Table 4: estimation errors on HIGGS (reproduced)")
    # Uniform-spread estimators suffer most on extreme skew.
    assert summaries["iam"].max <= summaries["mhist"].max

    estimator, _ = experiments.get_estimator("iam", "higgs")
    _, test = experiments.get_workloads("higgs")
    benchmark(estimator.estimate_many, test.queries[:16])
