"""Figure 7 (accuracy vs number of GMM components) and Table 12 (model
size vs components).

Expected shape: errors fall steeply from K=1 to ~K=10-30 then plateau;
model size grows monotonically in K.
"""

from repro.bench import experiments, record_table


def test_fig7_table12_component_sweep(benchmark):
    headers, rows = experiments.component_sweep("twi", counts=(1, 5, 10, 20, 30))
    record_table("fig7_table12_components", headers, rows,
                 title="Figure 7 / Table 12: varying the number of components on TWI")
    maxes = [row[3] for row in rows]
    sizes = [row[4] for row in rows]
    assert maxes[0] >= maxes[-1]  # K=1 is the worst
    assert sizes == sorted(sizes)  # size monotone in K

    estimator, _ = experiments.get_estimator("iam", "twi")
    _, test = experiments.get_workloads("twi")
    benchmark(estimator.estimate_many, test.queries[:8])
