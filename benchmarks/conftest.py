"""Benchmark-suite configuration.

Scale is controlled by ``REPRO_BENCH_SCALE`` (smoke | full); fitted models
and workloads are cached inside :mod:`repro.bench.experiments`, so
benchmark modules can run in any order without refitting.
"""

import pytest

from repro.bench import bench_scale


@pytest.fixture(scope="session", autouse=True)
def announce_scale():
    scale = bench_scale()
    print(
        f"\n[repro-bench] scale={scale.name} rows={scale.rows} "
        f"epochs={scale.ar_epochs} queries={scale.n_test_queries}"
    )
    yield
