"""Table 2: q-error quantiles of every estimator on WISDM.

Expected shape (paper): IAM best at 95th/99th/max; Naru-style AR second;
independence (postgres) and uniformity (mhist, quicksel) blow up on the
correlated categorical × continuous structure.
"""

from repro.bench import experiments, record_table


def test_table2_wisdm_accuracy(benchmark):
    headers, rows, summaries = experiments.accuracy_table("wisdm")
    record_table("table2_wisdm", headers, rows,
                 title="Table 2: estimation errors on WISDM (reproduced)")
    assert summaries["iam"].p99 <= summaries["postgres"].p99 * 2.0

    estimator, _ = experiments.get_estimator("iam", "wisdm")
    _, test = experiments.get_workloads("wisdm")
    benchmark(estimator.estimate_many, test.queries[:16])
