"""Table 7: batch-inference ms/query vs batch size on IMDB joins."""

from repro.bench import experiments, record_table


def test_table7_batch_inference(benchmark):
    headers, rows = experiments.batch_inference_table()
    record_table("table7_batch_inference", headers, rows,
                 title="Table 7: inference time with batch query processing (ms/query)")
    by_name = {row[0]: row[1:] for row in rows}
    # Batching must not regress the AR estimators (the paper's GPU gains
    # come from kernel-launch amortisation; CPU numpy sees ~noise-level
    # changes because wildcard skipping is preserved per query).
    assert by_name["iam"][-1] <= by_name["iam"][0] * 1.25
    # IAM stays cheaper than the factorized Naru at every batch size.
    assert all(i <= n for i, n in zip(by_name["iam"], by_name["naru"]))

    estimator, _ = experiments.get_join_estimator("iam")
    _, test = experiments.get_join_workloads()
    benchmark(estimator.estimate_cardinalities, test.queries[:32], 32)
