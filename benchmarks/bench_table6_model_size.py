"""Table 6: model sizes (MB). Expected shape: IAM < Naru/Neurocard on
every dataset (K-wide GMM heads instead of factorized sqrt(D)-wide ones)."""

from repro.bench import experiments, record_table


def test_table6_model_sizes(benchmark):
    headers, rows = experiments.model_sizes()
    record_table("table6_model_size", headers, rows,
                 title="Table 6: model sizes (MB, reproduced)")
    sizes = {row[0]: row[1:] for row in rows}
    assert all(i <= n for i, n in zip(sizes["iam"], sizes["naru"]))

    estimator, _ = experiments.get_estimator("iam", "twi")
    benchmark(estimator.size_bytes)
