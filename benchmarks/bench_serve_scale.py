"""Multi-process serving scale-out: sharded workers vs single-process.

Runs the same closed-loop load generator as ``python -m repro.bench
serve_scale`` (worker sweep, bitwise spot-check, shed probe, shm leak
gate) at a reduced sweep so the pytest-benchmark suite stays quick; the
full 1/2/4/8 sweep and its JSON gate live in the CLI command.
"""

from repro.bench import experiments, record_table


def test_serve_scale(benchmark):
    headers, rows, summary = experiments.serve_scale(
        "twi", worker_counts=(1, 2), duration_s=2.0
    )
    record_table("serve_scale_twi", headers, rows,
                 title="Sharded serving scale-out on TWI")

    # Every cluster answer matched the single-process reference bitwise.
    assert summary["bitwise_equal"]
    # The overload probe actually exercised admission control.
    assert summary["shed_requests"] > 0
    # Every published plan segment was unlinked on close.
    assert summary["leaked_segments"] == []
    # Two workers sustain meaningfully more than one (stall-bound load).
    qps = {r["workers"]: r["qps"] for r in summary["workers"]}
    assert qps[2] > qps[1] * 1.5, f"no scale-out: {qps}"

    estimator, _ = experiments.get_estimator("iam", "twi")
    _, test = experiments.get_workloads("twi")
    benchmark(estimator.estimate_many, test.queries[:16], 16)
