"""Figure 4: single-query inference time per estimator per dataset."""

import pytest

from repro.bench import experiments, record_table


@pytest.mark.parametrize("dataset", experiments.SINGLE_TABLE_DATASETS)
def test_fig4_inference_time(benchmark, dataset):
    headers, rows = experiments.inference_times(dataset)
    record_table(f"fig4_inference_{dataset}", headers, rows,
                 title=f"Figure 4: single-query inference time on {dataset.upper()} (ms)")

    estimator, _ = experiments.get_estimator("iam", dataset)
    _, test = experiments.get_workloads(dataset)
    query = test.queries[0]
    benchmark(estimator.estimate, query)
