"""Serving throughput: micro-batching + result cache vs sequential calls."""

from repro.bench import experiments, record_table


def test_serve_throughput(benchmark):
    headers, rows, summary = experiments.serve_throughput("twi")
    record_table("serve_throughput_twi", headers, rows,
                 title="Serving throughput on TWI (micro-batching + cache)")

    # The warm pass re-serves the identical workload: virtually every
    # request must come from the cache.
    warm = rows[-1]
    assert warm[-1] >= 0.9, f"warm-pass cache hit rate too low: {warm[-1]}"
    # Micro-batching actually coalesced concurrent clients.
    assert summary["batcher"].largest_batch > 1

    service_stats = summary["cache"]
    assert service_stats.hits > 0

    estimator, _ = experiments.get_estimator("iam", "twi")
    _, test = experiments.get_workloads("twi")
    benchmark(estimator.estimate_many, test.queries[:16], 16)
