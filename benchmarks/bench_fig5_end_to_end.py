"""Figure 5: end-to-end optimizer time per estimator on IMDB joins.

Each estimator's sub-join cardinalities drive a Selinger-style optimizer;
chosen plans execute with real hash joins. Better estimates -> more
true-optimal plans -> fewer intermediate rows.
"""

from repro.bench import experiments, record_table
from repro.optimizer import choose_plan


def test_fig5_end_to_end(benchmark):
    headers, rows = experiments.end_to_end_table()
    record_table("fig5_end_to_end", headers, rows,
                 title="Figure 5: end-to-end time on IMDB (reproduced)")
    by_name = {row[0]: row for row in rows}
    # The exact oracle is the lower envelope on intermediate work.
    intermediate = {name: row[3] for name, row in by_name.items()}
    assert intermediate["true"] == min(intermediate.values())

    schema = experiments.get_imdb()
    _, test = experiments.get_join_workloads()
    estimator, _ = experiments.get_join_estimator("iam")
    benchmark(choose_plan, test.queries[0], schema, estimator.estimate_cardinality)
