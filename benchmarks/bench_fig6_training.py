"""Figure 6 (max error vs training epochs) and Table 8 (training time)."""

from repro.bench import experiments, record_table
from repro.bench.config import bench_scale


def test_fig6_training_curve(benchmark):
    curve, total_seconds = experiments.training_curve("twi")
    rows = [[epoch + 1, round(err, 2)] for epoch, err in curve]
    record_table("fig6_training_curve", ["Epoch", "Max q-error"], rows,
                 title=f"Figure 6: max error vs epochs on TWI "
                       f"(total fit {total_seconds:.1f}s, reproduced)")
    # Training must reduce max error substantially from epoch 1.
    assert curve[-1][1] <= curve[0][1]

    scale = bench_scale()
    from repro.core import IAM, IAMConfig

    config = IAMConfig(epochs=1, hidden_sizes=(32, 32, 32), n_components=8,
                       samples_per_component=500, seed=0)
    table = experiments.get_table("twi").sample_rows(2000, rng=0)

    benchmark(lambda: IAM(config).fit(table))


def test_table8_training_times(benchmark):
    headers, rows = experiments.training_times("twi")
    record_table("table8_training_time", headers, rows,
                 title="Table 8: training time (s) on TWI (reproduced)")
    by_name = dict(rows)
    # IAM trains GMMs + AR: slower than Naru but same order of magnitude.
    assert by_name["iam"] < by_name["naru"] * 10

    benchmark(lambda: experiments.get_estimator("iam", "twi"))
