"""Spatial workload study: IAM vs classic estimators on TWI-like data.

Reproduces the paper's motivating scenario — range queries over
latitude/longitude with huge domain sizes — and shows where
independence-based estimation falls apart. Also demonstrates disjunctive
(OR) queries through the inclusion–exclusion helper.

Run:  python examples/spatial_queries.py
"""

import numpy as np

from repro import IAM, IAMConfig, Query
from repro.datasets import make_twi
from repro.estimators import Postgres1D, Sampling
from repro.metrics import summarize
from repro.query import DNFQuery, Workload, estimate_dnf
from repro.query.executor import execute_query


def main() -> None:
    table = make_twi(n_rows=20_000, seed=1)
    workload = Workload.generate(table, 150, seed=42)

    print("fitting estimators...")
    iam = IAM(IAMConfig(n_components=20, epochs=6, seed=0)).fit(table)
    postgres = Postgres1D().fit(table)
    sampling = Sampling(fraction=0.01, seed=0).fit(table)

    print("\nq-error on 150 random spatial range queries")
    for name, estimate_many in [
        ("iam", lambda qs: iam.estimate_many(qs)),
        ("postgres", lambda qs: np.array([postgres.estimate(q) for q in qs])),
        ("sampling", lambda qs: np.array([sampling.estimate(q) for q in qs])),
    ]:
        estimates = estimate_many(workload.queries)
        print(f"  {name:9s} {summarize(workload.true_selectivities, estimates, table.num_rows)}")

    # Disjunction support: tweets near either of two "cities".
    box_a = Query.from_pairs(
        [("latitude", ">=", 33.0), ("latitude", "<=", 36.0),
         ("longitude", ">=", -119.0), ("longitude", "<=", -116.0)]
    )
    box_b = Query.from_pairs(
        [("latitude", ">=", 40.0), ("latitude", "<=", 42.0),
         ("longitude", ">=", -75.0), ("longitude", "<=", -72.0)]
    )
    dnf = DNFQuery([box_a, box_b])
    estimate = estimate_dnf(dnf, iam.estimate)
    truth = (
        (execute_query(table, box_a) | execute_query(table, box_b)).mean()
    )
    print(f"\nOR-query {dnf}")
    print(f"  estimate={estimate:.4f}  truth={truth:.4f}")


if __name__ == "__main__":
    main()
