"""End-to-end optimizer integration (the paper's Figure 5 scenario).

A Selinger-style optimizer picks join orders from each estimator's
sub-join cardinalities; the hash-join executor then runs the chosen
plans on the real data. Better estimates -> cheaper plans -> less
intermediate data -> faster execution.

Run:  python examples/optimizer_integration.py
"""

from repro.datasets.imdb import make_imdb
from repro.joins import JoinAREstimator, JoinWorkload, PostgresJoin
from repro.optimizer import run_end_to_end


def main() -> None:
    schema = make_imdb(n_titles=3000, n_movie_info=15_000,
                       n_cast_info=20_000, n_movie_keyword=12_000, seed=0)
    workload = JoinWorkload.generate(schema, 40, seed=5)

    print("fitting estimators...")
    iam = JoinAREstimator(kind="iam", m_samples=12_000, epochs=6,
                          n_components=20, seed=0).fit(schema)
    postgres = PostgresJoin().fit(schema)

    results = run_end_to_end(
        schema,
        workload.queries,
        {
            "iam": iam.estimate_cardinality,
            "postgres": postgres.estimate_cardinality,
            # A broken oracle shows the cost of bad estimates.
            "pessimal": lambda q: 1.0,
        },
    )
    print(f"\n{'estimator':10s} {'mean ms':>9s} {'intermediate rows':>19s} {'optimal plans':>14s}")
    for result in results:
        print(
            f"{result.name:10s} {result.mean_ms:9.3f} "
            f"{result.total_intermediate_rows:19d} {result.optimal_plan_rate:14.2f}"
        )
    print("\n('true' uses exact cardinalities: the lower envelope.)")


if __name__ == "__main__":
    main()
