"""Join cardinality estimation on the IMDB-like star schema.

One AR model trained on Exact-Weight samples of the full outer join
answers queries over any table subset via fanout scaling — compared
against a Selinger-style independence estimator.

Run:  python examples/join_estimation.py
"""

import numpy as np

from repro.datasets.imdb import make_imdb
from repro.joins import JoinAREstimator, JoinQuery, JoinWorkload, PostgresJoin
from repro.metrics import ErrorSummary, q_errors
from repro.query import Query


def main() -> None:
    schema = make_imdb(n_titles=2500, seed=0)
    print("schema:", ", ".join(f"{n}({t.num_rows})" for n, t in schema.tables.items()))
    print("full outer join size:", schema.full_join_size())

    workload = JoinWorkload.generate(schema, 80, seed=3)

    print("\nfitting estimators...")
    iam = JoinAREstimator(kind="iam", m_samples=12_000, epochs=6,
                          n_components=20, seed=0).fit(schema)
    postgres = PostgresJoin().fit(schema)

    truth = np.maximum(workload.true_cardinalities, 1.0)
    for name, estimator in [("iam-join", iam), ("postgres-join", postgres)]:
        cards = estimator.estimate_cardinalities(workload.queries)
        errors = q_errors(truth, np.maximum(cards, 1.0))
        print(f"  {name:14s} {ErrorSummary.from_errors(errors)}")

    # A hand-written 3-way join query.
    query = JoinQuery(
        tables=frozenset({"title", "movie_info", "cast_info"}),
        query=Query.from_pairs(
            [("production_year", ">=", 2000), ("x", "<=", 0.0), ("role_id", "=", 2)]
        ),
    )
    print(f"\n{query}")
    print(f"  true cardinality : {schema.true_cardinality(query)}")
    print(f"  iam estimate     : {iam.estimate_cardinality(query):.0f}")
    print(f"  postgres estimate: {postgres.estimate_cardinality(query):.0f}")


if __name__ == "__main__":
    main()
