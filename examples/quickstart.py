"""Quickstart: fit IAM on a spatial dataset and estimate range queries.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import IAM, IAMConfig, Query
from repro.datasets import make_twi
from repro.metrics import q_error
from repro.query.executor import true_selectivity


def main() -> None:
    # 1. A TWI-like spatial table: two large-domain continuous columns.
    table = make_twi(n_rows=20_000, seed=0)
    print(f"dataset: {table.name}, rows={table.num_rows}")
    for column in table:
        print(f"  {column.name}: domain size {column.domain_size}")

    # 2. Fit IAM. GMMs shrink each coordinate's domain to 20 components;
    #    the AR model learns the joint distribution of the reduced tuples.
    config = IAMConfig(n_components=20, epochs=6, n_progressive_samples=512, seed=0)
    model = IAM(config).fit(table)
    print(f"\nreduced domains: {model.reduced_domain_sizes()}")
    print(f"model size: {model.size_bytes() / 1024:.0f} KiB")

    # 3. Estimate a few range queries and compare with the exact answer.
    queries = [
        Query.from_pairs([("latitude", "<=", 35.0)]),
        Query.from_pairs([("latitude", ">=", 40.0), ("longitude", "<=", -100.0)]),
        Query.from_pairs(
            [
                ("latitude", ">=", 30.0),
                ("latitude", "<=", 34.0),
                ("longitude", ">=", -90.0),
                ("longitude", "<=", -80.0),
            ]
        ),
    ]
    print("\nquery                                      estimate   truth     q-error")
    for query in queries:
        estimate = model.estimate(query)
        truth = true_selectivity(table, query)
        print(f"{str(query)[:42]:42s} {estimate:8.4f} {truth:8.4f}  {q_error(truth, estimate):8.2f}")


if __name__ == "__main__":
    main()
