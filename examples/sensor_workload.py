"""Sensor-data workload (WISDM-like): mixed column types, model reuse.

Shows the paper's column policy in action — categorical columns keep
exact encodings, large-domain continuous channels are GMM-reduced — plus
batch inference and save/load round-tripping.

Run:  python examples/sensor_workload.py
"""

import tempfile
import time
from pathlib import Path

from repro import IAM, IAMConfig
from repro.core import load_iam, save_iam
from repro.datasets import make_wisdm
from repro.metrics import summarize
from repro.query import Workload


def main() -> None:
    table = make_wisdm(n_rows=20_000, seed=0)
    print("columns:")
    for column in table:
        policy = "GMM-reduced" if column.is_continuous() and column.domain_size > 1000 else "exact"
        print(f"  {column.name:14s} kind={column.kind.value:11s} domain={column.domain_size:6d} -> {policy}")

    model = IAM(IAMConfig(n_components=25, epochs=6, seed=0)).fit(table)
    workload = Workload.generate(table, 120, seed=9)

    # Batch inference: many queries share the progressive-sampling passes.
    start = time.perf_counter()
    estimates = model.estimate_many(workload.queries, batch_size=16)
    elapsed = (time.perf_counter() - start) * 1000 / len(workload)
    print(f"\nbatch inference: {elapsed:.2f} ms/query")
    print(f"accuracy: {summarize(workload.true_selectivities, estimates, table.num_rows)}")

    # Persist and reload — estimates must survive the round trip.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "wisdm_iam.npz"
        save_iam(model, path)
        restored = load_iam(path, table)
        check = restored.estimate(workload.queries[0])
        original = model.estimate(workload.queries[0])
        print(f"\nsave/load: original={original:.5f} restored={check:.5f} "
              f"(archive {path.stat().st_size / 1024:.0f} KiB)")


if __name__ == "__main__":
    main()
