"""Approximate aggregate queries (COUNT / SUM / AVG) — the paper's
future-work extension, implemented on top of IAM's unbiased sampler.

Run:  python examples/aggregate_queries.py
"""

import numpy as np

from repro import IAM, IAMConfig, Query
from repro.core import AQPEngine
from repro.datasets import make_wisdm
from repro.query.executor import execute_query


def main() -> None:
    table = make_wisdm(n_rows=20_000, seed=0)
    config = IAMConfig(
        n_components=30,
        epochs=14,
        learning_rate=1e-2,
        interval_kind="empirical",
        seed=0,
    )
    model = IAM(config).fit(table)
    engine = AQPEngine(model)

    # "Average x-acceleration while the subject performs activity 3."
    query = Query.from_pairs([("activity_code", "=", 3)])
    result = engine.aggregate("x", query)

    mask = execute_query(table, query)
    values = table["x"].values[mask]
    print("SELECT COUNT(*), SUM(x), AVG(x) WHERE activity_code = 3")
    print(f"  estimated: count={result.count:9.0f}  sum={result.sum:12.1f}  avg={result.avg:8.3f}")
    print(f"  exact    : count={mask.sum():9d}  sum={values.sum():12.1f}  avg={values.mean():8.3f}")

    # A range-restricted aggregate over a GMM-reduced column.
    lo = float(np.quantile(table["y"].values, 0.2))
    hi = float(np.quantile(table["y"].values, 0.8))
    query = Query.from_pairs([("y", ">=", lo), ("y", "<=", hi)])
    result = engine.aggregate("y", query)
    mask = execute_query(table, query)
    values = table["y"].values[mask]
    print(f"\nSELECT COUNT(*), SUM(y), AVG(y) WHERE {lo:.2f} <= y <= {hi:.2f}")
    print(f"  estimated: count={result.count:9.0f}  sum={result.sum:12.1f}  avg={result.avg:8.3f}")
    print(f"  exact    : count={mask.sum():9d}  sum={values.sum():12.1f}  avg={values.mean():8.3f}")


if __name__ == "__main__":
    main()
