"""Bring your own data: CSV -> IAM -> SQL-ish queries.

Demonstrates the adoption path for a downstream user: load a numeric CSV,
fit IAM with defaults, and estimate WHERE clauses written as strings.

Run:  python examples/custom_data.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import IAM, IAMConfig
from repro.data.csvio import read_csv, write_csv
from repro.datasets import make_twi
from repro.query import parse_query
from repro.query.executor import true_selectivity


def main() -> None:
    # Stand-in for "your" CSV: dump a spatial table to disk first.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "checkins.csv"
        write_csv(make_twi(15_000, seed=7), path)
        print(f"loading {path.name} ...")
        table = read_csv(path, kinds={"latitude": "continuous", "longitude": "continuous"})

    print(f"{table.num_rows} rows; domains:",
          {c.name: c.domain_size for c in table})

    model = IAM(IAMConfig(n_components=25, epochs=8, interval_kind="empirical",
                          learning_rate=1e-2, seed=0)).fit(table)

    for clause in (
        "latitude >= 40",
        "latitude BETWEEN 30 AND 35 AND longitude <= -90",
        "longitude > -80 AND latitude < 36",
    ):
        query = parse_query(clause)
        estimate, stderr = model.estimate_with_error(query)
        truth = true_selectivity(table, query)
        print(f"WHERE {clause:48s} est={estimate:.4f} ±{2 * stderr:.4f}  true={truth:.4f}")


if __name__ == "__main__":
    main()
