"""Chain joins beyond star schemas: title <- movie_companies -> company.

Tree-structured schemas generalise JOB-light's stars; the Exact-Weight
sampler propagates NULLs down subtrees and the fanout columns carry
subtree weights, so one AR model still answers any connected subset.

Run:  python examples/tree_joins.py
"""

from repro.datasets.imdb_tree import make_imdb_tree
from repro.joins import JoinAREstimator, JoinQuery
from repro.query import Query


def main() -> None:
    schema = make_imdb_tree(n_titles=2000, n_movie_companies=6000, n_companies=300, seed=0)
    print("tree:", " -> ".join(f"{e.parent}.{e.parent_key}={e.child}.{e.child_key}"
                               for e in schema.edges))
    print("full outer join size:", schema.full_join_size())

    model = JoinAREstimator(
        kind="iam", m_samples=10_000, epochs=6, learning_rate=1e-2,
        n_components=15, interval_kind="empirical", seed=0,
    ).fit(schema)

    queries = [
        JoinQuery(frozenset({"title", "movie_companies"}),
                  Query.from_pairs([("production_year", ">=", 2000)])),
        JoinQuery(frozenset({"title", "movie_companies", "company"}),
                  Query.from_pairs([("production_year", ">=", 2000),
                                    ("country_code", "=", 0)])),
        JoinQuery(frozenset({"title", "movie_companies", "company"}),
                  Query.from_pairs([("budget", ">=", 20.0), ("founded", ">=", 1980)])),
    ]
    print(f"\n{'query':70s} {'true':>8s} {'estimate':>9s}")
    for query in queries:
        truth = schema.true_cardinality(query)
        estimate = model.estimate_cardinality(query)
        print(f"{str(query)[:70]:70s} {truth:8d} {estimate:9.0f}")


if __name__ == "__main__":
    main()
